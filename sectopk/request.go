package sectopk

import (
	"context"
	"time"

	"repro/internal/secerr"
)

// Workload names one of the query kinds the unified Request surface
// executes. The string values are part of the client wire protocol.
type Workload string

const (
	// WorkloadTopK is a SecTopK top-k selection query (Algorithm 3).
	WorkloadTopK Workload = "topk"
	// WorkloadJoin is a secure top-k equi-join (Section 12).
	WorkloadJoin Workload = "join"
	// WorkloadKNN is a secure k-nearest-neighbors query (Section 11.3).
	WorkloadKNN Workload = "knn"
)

// Request is the unified query surface: one hosted relation ID plus
// exactly one workload trapdoor — a top-k Token, a JoinToken, or a
// KNNToken — and the per-query options. Build one with TopKRequest,
// JoinRequest, or KNNRequest, then hand it to DataCloud.Execute (in
// process) or Client.Execute (over the wire); both return the same
// *Answer.
type Request struct {
	// Relation is the hosted relation ID the request targets.
	Relation string
	// TopK, Join, KNN: exactly one must be non-nil; it selects the
	// workload.
	TopK *Token
	Join *JoinToken
	KNN  *KNNToken
	// Options configure this query's execution (mode, halting, depth
	// caps, per-query parallelism). Join and kNN runs currently ignore
	// the top-k-specific options.
	Options []QueryOption
}

// TopKRequest builds a top-k request.
func TopKRequest(relation string, tk *Token, opts ...QueryOption) Request {
	return Request{Relation: relation, TopK: tk, Options: opts}
}

// JoinRequest builds a top-k equi-join request.
func JoinRequest(relation string, tk *JoinToken, opts ...QueryOption) Request {
	return Request{Relation: relation, Join: tk, Options: opts}
}

// KNNRequest builds a k-nearest-neighbors request.
func KNNRequest(relation string, tk *KNNToken, opts ...QueryOption) Request {
	return Request{Relation: relation, KNN: tk, Options: opts}
}

// workload validates the sum shape and returns the selected workload.
func (r Request) workload() (Workload, error) {
	if r.Relation == "" {
		return "", secerr.New(secerr.CodeBadRequest, "sectopk: request names no relation")
	}
	var (
		w Workload
		n int
	)
	if r.TopK != nil {
		w, n = WorkloadTopK, n+1
	}
	if r.Join != nil {
		w, n = WorkloadJoin, n+1
	}
	if r.KNN != nil {
		w, n = WorkloadKNN, n+1
	}
	switch n {
	case 1:
		return w, nil
	case 0:
		return "", secerr.New(secerr.CodeInvalidToken, "sectopk: request carries no token")
	default:
		return "", secerr.New(secerr.CodeBadRequest, "sectopk: request carries %d tokens, want exactly one", n)
	}
}

// Answer is the encrypted outcome of one executed Request: exactly the
// field matching the request's workload is non-nil. Traffic is the wire
// usage attributable to the execution — the S1↔S2 rounds for in-process
// execution, or this call's client↔S1 rounds when the answer crossed
// the client wire. Either way the numbers come from the shared
// connection's counters, so they are approximate when requests execute
// concurrently on one connection.
type Answer struct {
	TopK *EncryptedResult
	Join *EncryptedJoinResult
	KNN  *EncryptedKNNResult

	Traffic Traffic
}

// Workload returns which workload produced this answer.
func (a *Answer) Workload() Workload {
	switch {
	case a.TopK != nil:
		return WorkloadTopK
	case a.Join != nil:
		return WorkloadJoin
	default:
		return WorkloadKNN
	}
}

// Execute runs one request of any workload against a hosted relation:
// it validates the sum shape, resolves the relation in the matching
// registry, and drives the workload's protocol against the connected
// crypto cloud. Unknown (or workload-mismatched) relation IDs fail with
// ErrUnknownRelation; malformed trapdoors with ErrInvalidToken. With
// WithSessionLimit the call first claims an admission slot — a request
// arriving with every slot taken sheds immediately with ErrOverloaded
// rather than queueing. A draining data cloud (Close under
// WithDrainTimeout) likewise sheds new requests while the in-flight
// ones finish. Session, JoinSession, SessionPool, and the remote client
// plane (ServeClients) are all thin wrappers over this entry point.
func (d *DataCloud) Execute(ctx context.Context, req Request) (*Answer, error) {
	return d.execute(ctx, req, buildQueryConfig(req.Options), d.admit)
}

// execute is the shared execution path: every wrapper funnels here with
// its resolved query config and admission gate (nil = unbounded). It
// brackets the run for the telemetry plane — one QuerySpan per request,
// shed and failed ones included — and feeds successful service times
// into the QoS limiter's deadline estimator.
func (d *DataCloud) execute(ctx context.Context, req Request, cfg queryConfig, adm *admission) (*Answer, error) {
	w, err := req.workload()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	s2Before := d.s2Calls()
	fbBefore := mergeFallbackCount()
	ans, err := d.executeWorkload(ctx, w, req, cfg, adm)
	elapsed := time.Since(start)
	if err == nil {
		ans.Traffic.S2Calls = d.s2Calls() - s2Before
		ans.Traffic.MergeFallbacks = mergeFallbackCount() - fbBefore
		d.qos.Observe(elapsed)
	}
	d.emitSpan(w, req.Relation, cfg.tenant, ans, err, elapsed)
	return ans, err
}

// executeWorkload runs one validated request through admission and its
// workload's protocol. Admission is layered: the drain/closed check
// first, then the per-tenant QoS budget (which sheds typed, never
// queues), then the session-limit gate.
func (d *DataCloud) executeWorkload(ctx context.Context, w Workload, req Request, cfg queryConfig, adm *admission) (*Answer, error) {
	if err := d.beginExecute(); err != nil {
		return nil, err
	}
	defer d.endExecute()
	if err := d.qos.Admit(ctx, cfg.tenant); err != nil {
		return nil, err
	}
	if err := adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer adm.release()
	before := d.Traffic()
	// Cluster-hosted relations execute through the front-door placement —
	// coordinator fan-out for top-k, client-wire forwarding for join/kNN;
	// everything else resolves in the local registries.
	ans, handled, err := d.clusterAnswer(ctx, w, req, cfg)
	if err != nil {
		return nil, err
	}
	if handled {
		after := d.Traffic()
		ans.Traffic.Rounds = after.Rounds - before.Rounds
		ans.Traffic.Bytes = after.Bytes - before.Bytes
		return ans, nil
	}
	ans = &Answer{}
	switch w {
	case WorkloadTopK:
		rel, err := d.hostedTopK(req.Relation)
		if err != nil {
			return nil, err
		}
		// The query runs start-to-finish on one immutable snapshot: a
		// concurrent Apply/Compact swaps the hosted engine but never this
		// one. An epoch pin (WithEpoch) fences version skew at entry —
		// after that, the snapshot IS the pinned epoch.
		engine, epoch := rel.snapshot()
		if cfg.epoch != 0 && cfg.epoch != epoch {
			return nil, secerr.New(secerr.CodeRelationStale,
				"sectopk: query pinned to epoch %d, relation %q is at epoch %d", cfg.epoch, req.Relation, epoch)
		}
		if err := engine.ValidateToken(req.TopK.tk); err != nil {
			return nil, err
		}
		res, err := engine.SecQuery(ctx, req.TopK.tk, cfg.coreOptions())
		if err != nil {
			return nil, err
		}
		ans.TopK = &EncryptedResult{items: res.Items, Depth: res.Depth, Halted: res.Halted}
		ans.Traffic.FanOut = engine.Shards()
		ans.Traffic.Epoch = epoch
	case WorkloadJoin:
		hj, err := d.hostedJoinRelation(req.Relation)
		if err != nil {
			return nil, err
		}
		tuples, err := hj.engine.SecJoin(ctx, req.Join.tk)
		if err != nil {
			return nil, err
		}
		ans.Join = &EncryptedJoinResult{tuples: tuples}
	case WorkloadKNN:
		hk, err := d.hostedKNNRelation(req.Relation)
		if err != nil {
			return nil, err
		}
		if got, want := len(req.KNN.point), hk.er.db.M; got != want {
			return nil, secerr.New(secerr.CodeInvalidToken,
				"sectopk: kNN token has %d coordinates, relation has %d attributes", got, want)
		}
		// Re-validate k and the coordinate bounds here, not just at token
		// issue time: a token rebuilt from the wire (or a tampered file)
		// must fail exactly like an in-process one would.
		if req.KNN.k <= 0 {
			return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: kNN k=%d must be positive", req.KNN.k)
		}
		if err := validateKNNPoint(req.KNN.point, hk.er.maxScoreBits); err != nil {
			return nil, err
		}
		items, err := hk.engine.Query(ctx, req.KNN.point, req.KNN.k)
		if err != nil {
			return nil, err
		}
		ans.KNN = &EncryptedKNNResult{items: items}
	}
	after := d.Traffic()
	ans.Traffic.Rounds = after.Rounds - before.Rounds
	ans.Traffic.Bytes = after.Bytes - before.Bytes
	return ans, nil
}

// hostedTopK resolves a top-k relation, reporting workload mismatches as
// unknown-relation errors that name the actual kind.
func (d *DataCloud) hostedTopK(relation string) (*hostedRelation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rel := d.relations[relation]; rel != nil {
		return rel, nil
	}
	return nil, d.unknownRelationLocked(relation, WorkloadTopK)
}

// hostedJoinRelation resolves a join relation pair.
func (d *DataCloud) hostedJoinRelation(relation string) (*hostedJoin, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if hj := d.joins[relation]; hj != nil {
		return hj, nil
	}
	return nil, d.unknownRelationLocked(relation, WorkloadJoin)
}

// hostedKNNRelation resolves a kNN record store.
func (d *DataCloud) hostedKNNRelation(relation string) (*hostedKNN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if hk := d.knns[relation]; hk != nil {
		return hk, nil
	}
	return nil, d.unknownRelationLocked(relation, WorkloadKNN)
}

// unknownRelationLocked (d.mu held) builds the unknown-relation error,
// naming the hosted workload when the ID exists under a different one.
func (d *DataCloud) unknownRelationLocked(relation string, want Workload) error {
	var got Workload
	switch {
	case d.relations[relation] != nil:
		got = WorkloadTopK
	case d.joins[relation] != nil:
		got = WorkloadJoin
	case d.knns[relation] != nil:
		got = WorkloadKNN
	default:
		return secerr.New(secerr.CodeUnknownRelation, "sectopk: relation %q not hosted", relation)
	}
	return secerr.New(secerr.CodeUnknownRelation,
		"sectopk: relation %q is hosted for %s queries, not %s", relation, got, want)
}
