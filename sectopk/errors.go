package sectopk

import "repro/internal/secerr"

// Typed errors. Each carries a stable machine-readable code that survives
// the S1↔S2 wire, so errors.Is classifies failures identically whether
// they were raised in-process or reported by a remote peer.
var (
	// ErrInvalidToken marks a query token that fails validation against
	// the relation it targets.
	ErrInvalidToken error = secerr.ErrInvalidToken
	// ErrUnknownRelation marks an operation naming a relation the serving
	// party has not registered or hosted.
	ErrUnknownRelation error = secerr.ErrUnknownRelation
	// ErrRelationExists marks a Register/Host attempt for an ID already
	// in use.
	ErrRelationExists error = secerr.ErrRelationExists
	// ErrProtocolVersion marks a handshake between peers speaking
	// incompatible wire protocol versions.
	ErrProtocolVersion error = secerr.ErrProtocolVersion
	// ErrBadRequest marks a structurally invalid protocol request (the
	// crypto cloud's verdict on malformed or hostile input).
	ErrBadRequest error = secerr.ErrBadRequest
	// ErrTransport marks a failure of the link itself, as opposed to an
	// error reported by the peer.
	ErrTransport error = secerr.ErrTransport
	// ErrOverloaded marks a request shed by an admission bound: the data
	// cloud is at its configured session limit (or draining toward
	// shutdown) and refused the work instead of queueing it. Overloaded
	// requests are safe to retry after backing off; the retrying client
	// plane (DialRetry) does so automatically.
	ErrOverloaded error = secerr.ErrOverloaded
	// ErrRelationStale marks an operation pinned to a relation epoch that
	// is no longer the hosted one: a concurrent Apply or Compact advanced
	// the relation. The caller must refresh its view (epoch, positions)
	// and retry deliberately — never blindly, which is why the failure is
	// typed rather than retried by any recovery layer.
	ErrRelationStale error = secerr.ErrRelationStale
	// ErrUnavailable marks a cluster member (or other required peer) that
	// could not be reached mid-operation. It wraps the underlying
	// transport failure and names the member, so errors.Is matches both
	// ErrUnavailable and ErrTransport on a dead-node failure.
	ErrUnavailable error = secerr.ErrUnavailable
)
