package sectopk_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/sectopk"
)

// overloadRig is the minimal hosted stack the admission tests drive:
// one relation on a data cloud built with the given extra options.
type overloadRig struct {
	owner *sectopk.Owner
	cc    *sectopk.CryptoCloud
	dc    *sectopk.DataCloud
	er    *sectopk.EncryptedRelation
	tk    *sectopk.Token
}

func newOverloadRig(t *testing.T, extra ...sectopk.Option) *overloadRig {
	t.Helper()
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	t.Cleanup(cc.Close)
	if err := cc.Register("demo", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	dc := sectopk.NewDataCloud(testOpts(extra...)...)
	t.Cleanup(dc.Close)
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		t.Fatal(err)
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &overloadRig{owner: owner, cc: cc, dc: dc, er: er, tk: tk}
}

// TestSessionLimitSustainedOverload drives a WithSessionLimit(1) data
// cloud — directly and through a wider SessionPool — with sustained
// concurrent load. The contract under overload: excess requests shed
// immediately with typed ErrOverloaded (no unbounded queueing), admitted
// requests complete, and teardown leaves no goroutine behind.
func TestSessionLimitSustainedOverload(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rig := newOverloadRig(t, sectopk.WithSessionLimit(1))
	ctx := context.Background()
	req := sectopk.TopKRequest("demo", rig.tk)

	// The pool admits 4 concurrent runners, so the pool's own gate never
	// blocks here — every collision lands on the session limit and must
	// shed, not queue.
	pool, err := rig.dc.NewSessionPool("demo", 4)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers  = 4
		attempts = 3
	)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		ok      int
		shed    int
		unknown []error
	)
	run := func(exec func() error) {
		defer wg.Done()
		for a := 0; a < attempts; a++ {
			err := exec()
			mu.Lock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, sectopk.ErrOverloaded):
				shed++
			default:
				unknown = append(unknown, err)
			}
			mu.Unlock()
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go run(func() error { _, err := rig.dc.Execute(ctx, req); return err })
		go run(func() error { _, err := pool.Execute(ctx, rig.tk); return err })
	}
	wg.Wait()

	if len(unknown) > 0 {
		t.Fatalf("non-typed errors under overload: %v", unknown)
	}
	if ok == 0 {
		t.Fatal("no request completed under overload")
	}
	if shed == 0 {
		t.Fatalf("no request shed: %d workers x %d attempts against limit 1 all fit", 2*workers, attempts)
	}
	// A shed request released everything it held: after the load stops,
	// one more request must be admitted straight away.
	if _, err := rig.dc.Execute(ctx, req); err != nil {
		t.Fatalf("post-overload request failed: %v", err)
	}

	rig.dc.Close()
	rig.cc.Close()
	waitForGoroutines(t, baseline)
}

// TestTenantLimitsIsolation serves two tenants over real TCP from one
// data cloud: "bronze" behind a one-burst trickle rate, "gold"
// unlimited. The rate-limited tenant must shed with typed ErrOverloaded
// while every query from the unlimited tenant succeeds — admission
// pressure from one tenant cannot leak into another's budget.
func TestTenantLimitsIsolation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rig := newOverloadRig(t, sectopk.WithTenantLimits(map[string]sectopk.Rate{
		"bronze": {PerSecond: 0.05, Burst: 1}, // one query, then ~20s to the next token
	}))
	ctx := context.Background()
	addr, stop := serveClients(t, rig.dc)
	defer stop()

	gold, err := sectopk.Dial(ctx, addr, sectopk.WithTenant("gold"))
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := sectopk.Dial(ctx, addr, sectopk.WithTenant("bronze"))
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	req := sectopk.TopKRequest("demo", rig.tk)
	const queries = 3
	var wg sync.WaitGroup
	goldErrs := make([]error, queries)
	bronzeErrs := make([]error, queries)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < queries; i++ {
			_, goldErrs[i] = gold.Execute(ctx, req)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < queries; i++ {
			_, bronzeErrs[i] = bronze.Execute(ctx, req)
		}
	}()
	wg.Wait()

	for i, err := range goldErrs {
		if err != nil {
			t.Errorf("gold query %d failed despite no limit: %v", i, err)
		}
	}
	bronzeShed := 0
	for i, err := range bronzeErrs {
		if err == nil {
			continue
		}
		if !errors.Is(err, sectopk.ErrOverloaded) {
			t.Errorf("bronze query %d failed non-typed: %v", i, err)
			continue
		}
		bronzeShed++
	}
	// Burst 1 admits at most one bronze query before the trickle refill;
	// the other two must have shed.
	if bronzeShed < queries-1 {
		t.Errorf("bronze shed %d of %d queries, want >= %d", bronzeShed, queries, queries-1)
	}

	gold.Close()
	bronze.Close()
	stop()
	rig.dc.Close()
	rig.cc.Close()
	waitForGoroutines(t, baseline)
}
