package sectopk

import (
	"bytes"
	"context"
	"net"

	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/transport"
)

// Client is the authorized-querier role: it holds trapdoors issued by an
// owner and submits queries to a remote DataCloud over the client wire
// protocol (see ServeClients). One client multiplexes any number of
// concurrent Execute calls on a single connection; it is safe for
// concurrent use. The client never holds key material — it ships tokens
// and receives encrypted answers, which travel back to the owner for
// revealing.
type Client struct {
	conn  transport.ConnCaller
	stats *transport.Stats
}

// Dial connects to a DataCloud serving clients at addr (TCP), negotiates
// the multiplexed framing, and runs the client-plane version handshake.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: dialing data cloud")
	}
	c, err := NewClient(ctx, conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection to a DataCloud client
// listener (TCP, unix socket, ...): it negotiates the multiplexed
// framing and runs the version handshake. The connection is owned by the
// client from here on and closed by Close.
func NewClient(ctx context.Context, conn net.Conn) (*Client, error) {
	stats := transport.NewStats()
	mc, err := transport.Connect(ctx, conn, stats)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: mc, stats: stats}
	if err := c.hello(ctx); err != nil {
		mc.Close()
		return nil, err
	}
	return c, nil
}

// hello runs the client-plane version handshake.
func (c *Client) hello(ctx context.Context) error {
	var rep clientHelloReply
	req := clientHello{Min: clientMinProtocolVersion, Max: clientProtocolVersion}
	if err := c.conn.Call(ctx, methodClientHello, req, &rep); err != nil {
		return err
	}
	if rep.Version < clientMinProtocolVersion || rep.Version > clientProtocolVersion {
		return secerr.New(secerr.CodeProtocolVersion,
			"sectopk: server negotiated query plane v%d, this client speaks v%d..v%d",
			rep.Version, clientMinProtocolVersion, clientProtocolVersion)
	}
	return nil
}

// Execute submits one request of any workload and returns its encrypted
// answer — the remote counterpart of DataCloud.Execute, down to the
// error taxonomy: a failure reported by the server matches the same
// Err* sentinels under errors.Is as the in-process call would.
// Cancellation abandons only this request's frame; other in-flight
// requests on the connection proceed undisturbed. The answer's Traffic
// is measured on the shared connection counters, so with concurrent
// Execute calls on one client the per-answer numbers are approximate
// (Client.Traffic stays exact cumulatively).
func (c *Client) Execute(ctx context.Context, req Request) (*Answer, error) {
	w, err := req.workload()
	if err != nil {
		return nil, err
	}
	token, err := encodeWireToken(req, w)
	if err != nil {
		return nil, err
	}
	wreq := clientExecuteRequest{
		Relation: req.Relation,
		Workload: string(w),
		Token:    token,
		Options:  buildQueryConfig(req.Options).wire(),
	}
	before := c.stats.Total()
	var rep clientExecuteReply
	if err := c.conn.Call(ctx, methodClientExecute, wreq, &rep); err != nil {
		return nil, err
	}
	after := c.stats.Total()
	ans, err := decodeWireAnswer(w, rep.Answer)
	if err != nil {
		return nil, err
	}
	ans.Traffic = Traffic{
		Rounds: after.Calls - before.Calls,
		Bytes:  (after.BytesSent + after.BytesReceived) - (before.BytesSent + before.BytesReceived),
	}
	return ans, nil
}

// encodeWireToken serializes the request's trapdoor with the persistence
// codec of its workload.
func encodeWireToken(req Request, w Workload) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch w {
	case WorkloadTopK:
		err = secio.WriteToken(&buf, req.TopK.tk)
	case WorkloadJoin:
		err = secio.WriteJoinToken(&buf, req.Join.tk)
	case WorkloadKNN:
		err = secio.WriteKNNToken(&buf, req.KNN.point, req.KNN.k)
	}
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: encoding %s token", w)
	}
	return buf.Bytes(), nil
}

// decodeWireAnswer parses the server's answer payload with the
// persistence codec of the request's workload.
func decodeWireAnswer(w Workload, payload []byte) (*Answer, error) {
	r := bytes.NewReader(payload)
	ans := &Answer{}
	switch w {
	case WorkloadTopK:
		items, depth, halted, err := secio.ReadQueryResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding top-k answer")
		}
		ans.TopK = &EncryptedResult{items: items, Depth: depth, Halted: halted}
	case WorkloadJoin:
		tuples, err := secio.ReadJoinResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding join answer")
		}
		ans.Join = &EncryptedJoinResult{tuples: tuples}
	case WorkloadKNN:
		items, err := secio.ReadKNNResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding kNN answer")
		}
		ans.KNN = &EncryptedKNNResult{items: items}
	}
	return ans, nil
}

// Traffic returns the cumulative wire usage over this client's
// connection (handshake included).
func (c *Client) Traffic() Traffic {
	return Traffic{Rounds: c.stats.Rounds(), Bytes: c.stats.Bytes()}
}

// Close tears the connection down; in-flight requests fail promptly with
// a typed transport error. Safe to call more than once.
func (c *Client) Close() error {
	return c.conn.Close()
}
