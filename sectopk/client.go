package sectopk

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"net"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/transport"
)

// Client is the authorized-querier role: it holds trapdoors issued by an
// owner and submits queries to a remote DataCloud over the client wire
// protocol (see ServeClients). One client multiplexes any number of
// concurrent Execute calls on a single connection; it is safe for
// concurrent use. The client never holds key material — it ships tokens
// and receives encrypted answers, which travel back to the owner for
// revealing.
//
// A client built with DialRetry additionally recovers from failures:
// the connection re-dials itself, and failed Execute calls are retried
// under the configured policy (see DialRetry).
type Client struct {
	conn  transport.ConnCaller
	stats *transport.Stats
	// retry, when non-nil, re-issues failed Execute calls (transport
	// failures and overload sheds) under this policy. Set by DialRetry.
	retry *backoff.Policy
	// tenant is the name announced in the Hello (WithTenant); the server
	// buckets this connection's requests under it for QoS admission.
	tenant string
	// version is the negotiated client-plane protocol version (updated
	// atomically — a self-healing connection renegotiates on every
	// reconnect). Apply requires v2; a v1 server fails it typed instead
	// of getting a method it cannot decode.
	version atomic.Int32
}

// Dial connects to a DataCloud serving clients at addr (TCP), negotiates
// the multiplexed framing, and runs the client-plane version handshake.
// WithTenant names the tenant the connection identifies as; other
// options are ignored.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: dialing data cloud")
	}
	c, err := NewClient(ctx, conn, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection to a DataCloud client
// listener (TCP, unix socket, ...): it negotiates the multiplexed
// framing and runs the version handshake. The connection is owned by the
// client from here on and closed by Close. WithTenant names the tenant
// the connection identifies as; other options are ignored.
func NewClient(ctx context.Context, conn net.Conn, opts ...Option) (*Client, error) {
	stats := transport.NewStats()
	mc, err := transport.Connect(ctx, conn, stats)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: mc, stats: stats, tenant: buildConfig(opts).tenant}
	if err := c.hello(ctx); err != nil {
		mc.Close()
		return nil, err
	}
	return c, nil
}

// hello runs the client-plane version handshake.
func (c *Client) hello(ctx context.Context) error {
	return c.helloOn(ctx, c.conn)
}

// helloOn runs the client-plane version handshake over any caller — the
// freshly connected client, or each reconnect of a self-healing
// transport (ReconnectCaller's OnConnect) — and records the negotiated
// version.
func (c *Client) helloOn(ctx context.Context, caller transport.Caller) error {
	v, err := clientHelloOn(ctx, caller, c.tenant)
	if err != nil {
		return err
	}
	c.version.Store(int32(v))
	return nil
}

// clientHelloOn runs the client-plane version handshake and returns the
// negotiated version. The tenant rides the Hello (v3); a pre-v3 server
// simply never decodes the field and buckets the peer as default.
func clientHelloOn(ctx context.Context, caller transport.Caller, tenant string) (int, error) {
	var rep clientHelloReply
	req := clientHello{Min: clientMinProtocolVersion, Max: clientProtocolVersion, Tenant: tenant}
	if err := caller.Call(ctx, methodClientHello, req, &rep); err != nil {
		return 0, err
	}
	if rep.Version < clientMinProtocolVersion || rep.Version > clientProtocolVersion {
		return 0, secerr.New(secerr.CodeProtocolVersion,
			"sectopk: server negotiated query plane v%d, this client speaks v%d..v%d",
			rep.Version, clientMinProtocolVersion, clientProtocolVersion)
	}
	return rep.Version, nil
}

// DialRetry connects to a DataCloud like Dial, but through the
// self-healing transport: the connection is dialed (and, after link
// failures, re-dialed) under the retry policy of WithRetry (package
// defaults otherwise; other options are ignored), with the version
// handshake re-run on every fresh link. Execute calls additionally
// retry on transport failures and overload sheds (ErrOverloaded — e.g.
// a data cloud at its WithSessionLimit, or one draining for shutdown),
// carrying an idempotency key so the server accounts a retried query as
// one query, not a repeated query pattern. Errors the server computed —
// unknown relation, invalid token, bad request — surface immediately,
// wrapped with the attempt history.
func DialRetry(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	cfg := buildConfig(opts)
	policy := cfg.retryPolicy()
	stats := transport.NewStats()
	c := &Client{stats: stats, retry: &policy, tenant: cfg.tenant}
	rc := transport.NewReconnectCaller(transport.ReconnectConfig{
		Dial: func(ctx context.Context) (transport.ConnCaller, error) {
			var dialer net.Dialer
			conn, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: dialing data cloud")
			}
			mc, err := transport.Connect(ctx, conn, stats)
			if err != nil {
				conn.Close()
				return nil, err
			}
			return mc, nil
		},
		OnConnect: c.helloOn,
		Policy:    policy,
	})
	// Eager first dial (the version handshake rides OnConnect): fail
	// DialRetry after the policy's attempts rather than the first
	// Execute when the data cloud is unreachable.
	if err := rc.Connect(ctx); err != nil {
		rc.Close()
		return nil, err
	}
	c.conn = rc
	return c, nil
}

// Execute submits one request of any workload and returns its encrypted
// answer — the remote counterpart of DataCloud.Execute, down to the
// error taxonomy: a failure reported by the server matches the same
// Err* sentinels under errors.Is as the in-process call would.
// Cancellation abandons only this request's frame; other in-flight
// requests on the connection proceed undisturbed. The answer's Traffic
// is measured on the shared connection counters, so with concurrent
// Execute calls on one client the per-answer numbers are approximate
// (Client.Traffic stays exact cumulatively).
func (c *Client) Execute(ctx context.Context, req Request) (*Answer, error) {
	w, err := req.workload()
	if err != nil {
		return nil, err
	}
	token, err := encodeWireToken(req, w)
	if err != nil {
		return nil, err
	}
	wreq := clientExecuteRequest{
		Relation:    req.Relation,
		Workload:    string(w),
		Token:       token,
		Options:     buildQueryConfig(req.Options).wire(),
		Idempotency: newIdempotencyKey(),
	}
	before := c.stats.Total()
	var rep clientExecuteReply
	if c.retry != nil {
		err = backoff.Retry(ctx, methodClientExecute, *c.retry, executeRetryable,
			func(ctx context.Context) error {
				wreq.Attempt++
				rep = clientExecuteReply{}
				return c.conn.Call(ctx, methodClientExecute, wreq, &rep)
			})
	} else {
		err = c.conn.Call(ctx, methodClientExecute, wreq, &rep)
	}
	if err != nil {
		return nil, err
	}
	after := c.stats.Total()
	ans, err := decodeWireAnswer(w, rep.Answer)
	if err != nil {
		return nil, err
	}
	ans.Traffic = Traffic{
		Rounds: after.Calls - before.Calls,
		Bytes:  (after.BytesSent + after.BytesReceived) - (before.BytesSent + before.BytesReceived),
		// The server-side span fields (v3; zero from older servers).
		S2Calls:        rep.S2Calls,
		FanOut:         rep.FanOut,
		MergeFallbacks: rep.MergeFallbacks,
		Epoch:          rep.Epoch,
	}
	return ans, nil
}

// Apply ships one mutation delta to the remote DataCloud and returns
// the epoch the relation reached — the remote counterpart of
// DataCloud.Apply. The method needs client-plane v2; against a v1
// server it fails typed (ErrProtocolVersion) without touching the
// wire. A client built with DialRetry retries Apply like Execute:
// the retry is safe even though Apply mutates, because the delta's
// embedded idempotency key makes the server replay the recorded epoch
// instead of reapplying.
func (c *Client) Apply(ctx context.Context, relation string, delta *Delta) (uint64, error) {
	if delta == nil {
		return 0, secerr.New(secerr.CodeBadRequest, "sectopk: nil delta")
	}
	if v := c.version.Load(); v < 2 {
		return 0, secerr.New(secerr.CodeProtocolVersion,
			"sectopk: Apply needs client wire protocol v2, connection negotiated v%d", v)
	}
	var buf bytes.Buffer
	if err := secio.WriteDelta(&buf, delta.d, delta.params); err != nil {
		return 0, secerr.Wrap(secerr.CodeInternal, err, "sectopk: encoding delta")
	}
	wreq := clientApplyRequest{Relation: relation, Delta: buf.Bytes()}
	var rep clientApplyReply
	var err error
	if c.retry != nil {
		err = backoff.Retry(ctx, methodClientApply, *c.retry, executeRetryable,
			func(ctx context.Context) error {
				rep = clientApplyReply{}
				return c.conn.Call(ctx, methodClientApply, wreq, &rep)
			})
	} else {
		err = c.conn.Call(ctx, methodClientApply, wreq, &rep)
	}
	if err != nil {
		return 0, err
	}
	return rep.Epoch, nil
}

// Compact asks the remote DataCloud to fold a relation's tombstones and
// returns the new epoch — the remote counterpart of DataCloud.Compact.
// Unlike Apply, a compaction carries no idempotency key, so this call
// is never retried: a transport failure leaves it ambiguous whether the
// compaction landed, and the owner resolves that by re-hosting from its
// bundle rather than by guessing.
func (c *Client) Compact(ctx context.Context, relation string) (uint64, error) {
	if v := c.version.Load(); v < 2 {
		return 0, secerr.New(secerr.CodeProtocolVersion,
			"sectopk: Compact needs client wire protocol v2, connection negotiated v%d", v)
	}
	var rep clientApplyReply
	if err := c.conn.Call(ctx, methodClientCompact, clientCompactRequest{Relation: relation}, &rep); err != nil {
		return 0, err
	}
	return rep.Epoch, nil
}

// executeRetryable decides which Execute failures are worth repeating:
// link failures (the request or its reply was lost) and overload sheds
// (the server asked us to back off). Errors the server computed would
// fail identically again and surface immediately.
func executeRetryable(err error) bool {
	switch secerr.CodeOf(err) {
	case secerr.CodeTransport, secerr.CodeOverloaded:
		return true
	default:
		return false
	}
}

// newIdempotencyKey draws a fresh random run key for one logical query.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy means no dedup, not no query: an empty key keeps
		// the pre-idempotency accounting semantics.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// encodeWireToken serializes the request's trapdoor with the persistence
// codec of its workload.
func encodeWireToken(req Request, w Workload) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch w {
	case WorkloadTopK:
		err = secio.WriteToken(&buf, req.TopK.tk)
	case WorkloadJoin:
		err = secio.WriteJoinToken(&buf, req.Join.tk)
	case WorkloadKNN:
		err = secio.WriteKNNToken(&buf, req.KNN.point, req.KNN.k)
	}
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: encoding %s token", w)
	}
	return buf.Bytes(), nil
}

// decodeWireAnswer parses the server's answer payload with the
// persistence codec of the request's workload.
func decodeWireAnswer(w Workload, payload []byte) (*Answer, error) {
	r := bytes.NewReader(payload)
	ans := &Answer{}
	switch w {
	case WorkloadTopK:
		items, depth, halted, err := secio.ReadQueryResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding top-k answer")
		}
		ans.TopK = &EncryptedResult{items: items, Depth: depth, Halted: halted}
	case WorkloadJoin:
		tuples, err := secio.ReadJoinResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding join answer")
		}
		ans.Join = &EncryptedJoinResult{tuples: tuples}
	case WorkloadKNN:
		items, err := secio.ReadKNNResult(r)
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: decoding kNN answer")
		}
		ans.KNN = &EncryptedKNNResult{items: items}
	}
	return ans, nil
}

// Traffic returns the cumulative wire usage over this client's
// connection (handshake included).
func (c *Client) Traffic() Traffic {
	return Traffic{Rounds: c.stats.Rounds(), Bytes: c.stats.Bytes()}
}

// Close tears the connection down; in-flight requests fail promptly with
// a typed transport error. Safe to call more than once.
func (c *Client) Close() error {
	return c.conn.Close()
}
