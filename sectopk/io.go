package sectopk

import (
	"os"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/secio"
	"repro/internal/shard"
)

// Persistence for the artifacts a deployment moves between parties.
// Every stream is versioned gob with a magic header; key-bearing files
// are written with owner-only (0600) permissions.

// Save persists the owner's full scheme state (keys and symmetric
// secrets) to a 0600 file. The bundle must never leave the owner.
func (o *Owner) Save(path string) error {
	return secio.SaveOwnerBundle(path, o.scheme)
}

// LoadOwner restores an owner from a saved bundle. Relations, tokens,
// and results produced by the original owner remain valid. The bundle
// fixes the key material, so key-generation options are ignored; pass
// Enc-time options (WithShards) to re-apply them — the bundle does not
// record them, and omitting them restores an unsharded owner.
func LoadOwner(path string, opts ...Option) (*Owner, error) {
	scheme, err := secio.LoadOwnerBundle(path)
	if err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	return &Owner{scheme: scheme, shards: cfg.shards, revealers: map[int]*core.Revealer{}}, nil
}

// Save persists the key material for provisioning a CryptoCloud
// (0600 file: whoever reads it can decrypt the owner's data).
func (k *Keys) Save(path string) error {
	return secio.SaveKeyMaterial(path, k.km)
}

// LoadKeys reads provisioned key material.
func LoadKeys(path string) (*Keys, error) {
	km, err := secio.LoadKeyMaterial(path)
	if err != nil {
		return nil, err
	}
	return &Keys{km: km}, nil
}

// Save persists the encrypted relation (with its public key) for upload
// to a data cloud. Only public/encrypted material is written; sharded
// relations store every shard in one bundle (unsharded bundles keep the
// legacy single-relation format).
func (er *EncryptedRelation) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := secio.WriteHostedShards(f, er.sh.Shards, er.pk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEncryptedRelation reads an encrypted relation bundle (sharded or
// legacy single-relation).
func LoadEncryptedRelation(path string) (*EncryptedRelation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	shards, pk, err := secio.ReadHostedShards(f)
	if err != nil {
		return nil, err
	}
	sh, err := shard.New(shards)
	if err != nil {
		return nil, err
	}
	return &EncryptedRelation{sh: sh, pk: pk}, nil
}

// Save persists an encrypted join relation bundle.
func (er *EncryptedJoinRelation) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	params := ehl.Params{Kind: ehl.KindPlus, S: er.ehlS}
	if err := secio.WriteHostedJoinRelation(f, er.er, params, er.maxScoreBits, er.pk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEncryptedJoinRelation reads an encrypted join relation bundle.
func LoadEncryptedJoinRelation(path string) (*EncryptedJoinRelation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	er, params, maxScoreBits, pk, err := secio.ReadHostedJoinRelation(f)
	if err != nil {
		return nil, err
	}
	return &EncryptedJoinRelation{er: er, pk: pk, ehlS: params.S, maxScoreBits: maxScoreBits}, nil
}

// Save persists a query token (what an authorized client sends to S1).
func (t *Token) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := secio.WriteToken(f, t.tk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadToken reads a query token.
func LoadToken(path string) (*Token, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tk, err := secio.ReadToken(f)
	if err != nil {
		return nil, err
	}
	return &Token{tk: tk}, nil
}

// Save persists a join token.
func (t *JoinToken) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := secio.WriteJoinToken(f, t.tk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJoinToken reads a join token.
func LoadJoinToken(path string) (*JoinToken, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tk, err := secio.ReadJoinToken(f)
	if err != nil {
		return nil, err
	}
	return &JoinToken{tk: tk}, nil
}

// Save persists an encrypted query result (what S1 returns to the
// client for revealing).
func (r *EncryptedResult) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := secio.WriteQueryResult(f, r.items, r.Depth, r.Halted); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEncryptedResult reads an encrypted query result.
func LoadEncryptedResult(path string) (*EncryptedResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	items, depth, halted, err := secio.ReadQueryResult(f)
	if err != nil {
		return nil, err
	}
	return &EncryptedResult{items: items, Depth: depth, Halted: halted}, nil
}
