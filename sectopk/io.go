package sectopk

import (
	"io"
	"os"

	"repro/internal/ehl"
	"repro/internal/secio"
	"repro/internal/shard"
)

// Persistence for the artifacts a deployment moves between parties.
// Every stream is versioned gob with a magic header; key-bearing files
// are written with owner-only (0600) permissions. The same secio codecs
// back the client wire protocol, so a stored token or encrypted answer
// is byte-identical to its wire payload.

// saveTo creates path and streams one artifact into it.
func saveTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadFrom opens path and parses one artifact out of it.
func loadFrom(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f)
}

// Save persists the owner's full scheme state (keys and symmetric
// secrets) to a 0600 file. The bundle must never leave the owner.
func (o *Owner) Save(path string) error {
	return secio.SaveOwnerBundle(path, o.scheme)
}

// LoadOwner restores an owner from a saved bundle. Relations, tokens,
// and results produced by the original owner remain valid — including
// kNN record stores, whose digest key is derived deterministically from
// the bundled secrets (so even bundles written before the kNN workload
// existed restore it). The bundle fixes the key material, so
// key-generation options are ignored; pass Enc-time options
// (WithShards) to re-apply them — the bundle does not record them, and
// omitting them restores an unsharded owner.
func LoadOwner(path string, opts ...Option) (*Owner, error) {
	scheme, err := secio.LoadOwnerBundle(path)
	if err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	return newOwner(scheme, cfg.shards), nil
}

// Save persists the join owner's full scheme state to a 0600 file. The
// bundle must never leave the owner.
func (o *JoinOwner) Save(path string) error {
	return secio.SaveJoinOwnerBundle(path, o.scheme)
}

// LoadJoinOwner restores a join owner from a saved bundle. Relations,
// tokens, and results produced by the original owner remain valid.
func LoadJoinOwner(path string) (*JoinOwner, error) {
	scheme, err := secio.LoadJoinOwnerBundle(path)
	if err != nil {
		return nil, err
	}
	return &JoinOwner{scheme: scheme}, nil
}

// Save persists the key material for provisioning a CryptoCloud
// (0600 file: whoever reads it can decrypt the owner's data).
func (k *Keys) Save(path string) error {
	return secio.SaveKeyMaterial(path, k.km)
}

// LoadKeys reads provisioned key material.
func LoadKeys(path string) (*Keys, error) {
	km, err := secio.LoadKeyMaterial(path)
	if err != nil {
		return nil, err
	}
	return &Keys{km: km}, nil
}

// Save persists the encrypted relation (with its public key) for upload
// to a data cloud. Only public/encrypted material is written. A
// relation that has lived through mutations — a non-initial epoch,
// tombstones awaiting compaction, or an advanced id space — is written
// in the mutable-hosted format so all of that survives the round trip;
// a pristine relation keeps the legacy format byte-for-byte, so bundles
// produced before mutation existed and bundles produced now are
// interchangeable.
func (er *EncryptedRelation) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		if st := er.mst; st != nil && (st.Epoch > 1 || st.DeadRows() > 0 || st.IDSpace > er.sh.N) {
			return secio.WriteMutableHosted(w, st, er.pk)
		}
		return secio.WriteHostedShards(w, er.sh.Shards, er.pk)
	})
}

// LoadEncryptedRelation reads an encrypted relation bundle: the
// mutable-hosted format, the sharded format, or the legacy
// single-relation format. Legacy bundles adopt mutation state at epoch
// 1 with no tombstones, so every loaded relation is Apply-ready.
func LoadEncryptedRelation(path string) (*EncryptedRelation, error) {
	var out *EncryptedRelation
	err := loadFrom(path, func(r io.Reader) error {
		st, pk, err := secio.ReadMutableHosted(r)
		if err != nil {
			return err
		}
		sh, err := shard.New(st.LiveShards())
		if err != nil {
			return err
		}
		out = &EncryptedRelation{sh: sh, pk: pk, mst: st}
		return nil
	})
	return out, err
}

// Save persists an encrypted join relation bundle.
func (er *EncryptedJoinRelation) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		params := ehl.Params{Kind: ehl.KindPlus, S: er.ehlS}
		return secio.WriteHostedJoinRelation(w, er.er, params, er.maxScoreBits, er.pk)
	})
}

// LoadEncryptedJoinRelation reads an encrypted join relation bundle.
func LoadEncryptedJoinRelation(path string) (*EncryptedJoinRelation, error) {
	var out *EncryptedJoinRelation
	err := loadFrom(path, func(r io.Reader) error {
		er, params, maxScoreBits, pk, err := secio.ReadHostedJoinRelation(r)
		if err != nil {
			return err
		}
		out = &EncryptedJoinRelation{er: er, pk: pk, ehlS: params.S, maxScoreBits: maxScoreBits}
		return nil
	})
	return out, err
}

// Save persists an encrypted kNN relation bundle for upload to a data
// cloud. Only public/encrypted material is written.
func (er *EncryptedKNNRelation) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteHostedKNNRelation(w, er.db, er.maxScoreBits, er.pk)
	})
}

// LoadEncryptedKNNRelation reads an encrypted kNN relation bundle.
func LoadEncryptedKNNRelation(path string) (*EncryptedKNNRelation, error) {
	var out *EncryptedKNNRelation
	err := loadFrom(path, func(r io.Reader) error {
		db, maxScoreBits, pk, err := secio.ReadHostedKNNRelation(r)
		if err != nil {
			return err
		}
		out = &EncryptedKNNRelation{db: db, pk: pk, maxScoreBits: maxScoreBits}
		return nil
	})
	return out, err
}

// Save persists a query token (what an authorized client sends to S1).
func (t *Token) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteToken(w, t.tk)
	})
}

// LoadToken reads a query token.
func LoadToken(path string) (*Token, error) {
	var out *Token
	err := loadFrom(path, func(r io.Reader) error {
		tk, err := secio.ReadToken(r)
		if err != nil {
			return err
		}
		out = &Token{tk: tk}
		return nil
	})
	return out, err
}

// Save persists a join token.
func (t *JoinToken) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteJoinToken(w, t.tk)
	})
}

// LoadJoinToken reads a join token.
func LoadJoinToken(path string) (*JoinToken, error) {
	var out *JoinToken
	err := loadFrom(path, func(r io.Reader) error {
		tk, err := secio.ReadJoinToken(r)
		if err != nil {
			return err
		}
		out = &JoinToken{tk: tk}
		return nil
	})
	return out, err
}

// Save persists a kNN token (what an authorized client sends to S1).
func (t *KNNToken) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteKNNToken(w, t.point, t.k)
	})
}

// LoadKNNToken reads a kNN token.
func LoadKNNToken(path string) (*KNNToken, error) {
	var out *KNNToken
	err := loadFrom(path, func(r io.Reader) error {
		point, k, err := secio.ReadKNNToken(r)
		if err != nil {
			return err
		}
		out = &KNNToken{point: point, k: k}
		return nil
	})
	return out, err
}

// Save persists an encrypted query result (what S1 returns to the
// client for revealing).
func (r *EncryptedResult) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteQueryResult(w, r.items, r.Depth, r.Halted)
	})
}

// LoadEncryptedResult reads an encrypted query result.
func LoadEncryptedResult(path string) (*EncryptedResult, error) {
	var out *EncryptedResult
	err := loadFrom(path, func(r io.Reader) error {
		items, depth, halted, err := secio.ReadQueryResult(r)
		if err != nil {
			return err
		}
		out = &EncryptedResult{items: items, Depth: depth, Halted: halted}
		return nil
	})
	return out, err
}

// Save persists an encrypted join result (what S1 returns to the client
// for revealing).
func (r *EncryptedJoinResult) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteJoinResult(w, r.tuples)
	})
}

// LoadEncryptedJoinResult reads an encrypted join result.
func LoadEncryptedJoinResult(path string) (*EncryptedJoinResult, error) {
	var out *EncryptedJoinResult
	err := loadFrom(path, func(r io.Reader) error {
		tuples, err := secio.ReadJoinResult(r)
		if err != nil {
			return err
		}
		out = &EncryptedJoinResult{tuples: tuples}
		return nil
	})
	return out, err
}

// Save persists an encrypted kNN result (what S1 returns to the client
// for revealing).
func (r *EncryptedKNNResult) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteKNNResult(w, r.items)
	})
}

// LoadEncryptedKNNResult reads an encrypted kNN result.
func LoadEncryptedKNNResult(path string) (*EncryptedKNNResult, error) {
	var out *EncryptedKNNResult
	err := loadFrom(path, func(r io.Reader) error {
		items, err := secio.ReadKNNResult(r)
		if err != nil {
			return err
		}
		out = &EncryptedKNNResult{items: items}
		return nil
	})
	return out, err
}
