package sectopk

import (
	"bytes"
	"context"
	"net"
	"runtime"
	"sync"

	"repro/internal/cloud"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/transport"
)

// Client wire protocol v3 (querier ↔ data cloud).
//
// The client plane rides on the same framing stack as the S1↔S2 wire:
// connections negotiate the frame-ID multiplexed v2 framing (transport
// preface), so one querier connection keeps any number of requests in
// flight, replies match by frame ID, and a canceled request abandons
// only its own frame. On top of that framing the client plane defines
// its own method set and version number:
//
//	Client.Hello    {Min, Max, Tenant}    -> {Version}
//	Client.Execute  {Relation, Workload,  -> {Answer, span fields}
//	                 Token, Options}
//	Client.Apply    {Relation, Delta}     -> {Epoch}      (v2+)
//	Client.Compact  {Relation}            -> {Epoch}      (v2+)
//
// Token, Answer, and Delta are secio streams — byte-identical to the
// on-disk persistence formats — of the kind selected by Workload
// ("topk", "join", "knn") or, for Apply, the "delta" kind. Handler
// errors cross the wire as the structured (code, message) pairs of
// internal/secerr, so errors.Is against the sectopk.Err* sentinels
// behaves identically for remote and in-process callers. Version 2
// added Client.Apply, Client.Compact, and the epoch pin in the query
// options; a v1 peer negotiates down to v1 and simply has neither.
// Version 3 added the tenant field in the Hello (QoS admission buckets
// the connection's requests under it) and the span fields in the
// Execute reply; both ride gob's missing-field tolerance, so v1/v2
// peers interoperate unchanged — an absent tenant buckets as the
// default tenant, absent span fields decode as zero. See DESIGN.md
// "Client wire protocol" and "Telemetry and QoS".
const (
	// clientProtocolVersion is the highest client-plane version this
	// build speaks.
	clientProtocolVersion = 3
	// clientMinProtocolVersion is the oldest version still accepted.
	clientMinProtocolVersion = 1

	methodClientHello   = "Client.Hello"
	methodClientExecute = "Client.Execute"
	// methodClientApply shares its suffix with the S1→S2 wire's
	// MethodApply: both name the same side-effecting operation, and both
	// are deliberately outside every blind-retry table.
	methodClientApply   = "Client." + cloud.MethodApply
	methodClientCompact = "Client.Compact"
)

// clientHello announces the querier's supported version range and (v3)
// the tenant it identifies as; pre-v3 hellos decode with Tenant "",
// which buckets the connection as the default tenant.
type clientHello struct {
	Min, Max int
	Tenant   string
}

// clientHelloReply confirms the negotiated version.
type clientHelloReply struct {
	Version int
}

// wireQueryOptions flattens a query configuration for the wire. Zero
// values mean "default", matching the in-process QueryOption semantics.
type wireQueryOptions struct {
	Mode        int
	Halt        int
	Sort        int
	BatchDepth  int
	MaxDepth    int
	Parallelism int
	// Epoch pins the query to one relation epoch (v2; v1 streams decode
	// it as 0 = unpinned, which is exactly the v1 behavior).
	Epoch uint64
}

// wire flattens a resolved query config.
func (q queryConfig) wire() wireQueryOptions {
	return wireQueryOptions{
		Mode: int(q.mode), Halt: int(q.halt), Sort: int(q.sort),
		BatchDepth: q.batchDepth, MaxDepth: q.maxDepth, Parallelism: q.parallelism,
		Epoch: q.epoch,
	}
}

// queryConfigFromWire rebuilds a query config from its wire form.
func queryConfigFromWire(w wireQueryOptions) queryConfig {
	return queryConfig{
		mode: Mode(w.Mode), halt: Halting(w.Halt), sort: SortStrategy(w.Sort),
		batchDepth: w.BatchDepth, maxDepth: w.MaxDepth, parallelism: w.Parallelism,
		epoch: w.Epoch,
	}
}

// clientExecuteRequest carries one query: the relation ID, the workload
// discriminator, the workload's token as a secio stream, and the query
// options. Idempotency, when non-empty, is the query's run key: retries
// of the same logical query carry the same key (with Attempt counting
// up), so the server's leakage ledger counts a retried query once
// instead of recording a phantom repeated-query pattern. Old clients
// that omit the fields get the old behavior (every arrival counts).
type clientExecuteRequest struct {
	Relation    string
	Workload    string
	Token       []byte
	Options     wireQueryOptions
	Idempotency string
	Attempt     int
}

// clientExecuteReply carries the encrypted answer as a secio stream of
// the workload's result kind, plus (v3) the server-side span fields the
// client merges into Answer.Traffic. Pre-v3 replies decode them as
// zero.
type clientExecuteReply struct {
	Answer         []byte
	S2Calls        int64
	FanOut         int
	MergeFallbacks int64
	Epoch          uint64
}

// clientApplyRequest carries one mutation delta as a secio "delta"
// stream. The delta's embedded idempotency key is what makes retries of
// this side-effecting call safe — the server's applied-table replays
// the recorded epoch instead of reapplying.
type clientApplyRequest struct {
	Relation string
	Delta    []byte
}

// clientApplyReply reports the epoch the application produced (or had
// already produced, for an idempotent replay).
type clientApplyReply struct {
	Epoch uint64
}

// clientCompactRequest asks the data cloud to fold a relation's
// tombstones; the reply is a clientApplyReply with the new epoch.
type clientCompactRequest struct {
	Relation string
}

// ServeClients accepts querier connections on the listener and serves
// the client wire protocol until the listener closes or the context is
// canceled. Each connection is served on its own goroutine and
// multiplexes any number of in-flight requests; every admitted request
// executes through the same unified path as in-process callers, gated
// by the data cloud's admission bound (WithSessionLimit — which sheds
// overflow with ErrOverloaded — defaulting to a GOMAXPROCS-sized
// queueing gate for the remote plane), so N remote clients get the same
// bounded-concurrency guarantees a SessionPool gives local callers.
// Handler errors are reported to the peer as structured (code, message)
// pairs, never by tearing the serving loop down.
//
// Cancellation honors WithDrainTimeout: with a drain window configured,
// a canceled context stops accepting connections and new frames but
// lets in-flight requests finish (and their replies flush) for up to
// the window before aborting them; without one, everything aborts
// immediately.
func (d *DataCloud) ServeClients(ctx context.Context, l net.Listener) error {
	return transport.ServeWith(ctx, l, nil, transport.ServeOptions{
		Drain: d.cfg.drainTimeout,
		// Each connection gets its own responder: the tenant the peer
		// announces in its Hello is per-connection protocol state.
		NewResponder: func() transport.Responder {
			return &clientResponder{dc: d, gate: d.clientAdmission()}
		},
	})
}

// clientAdmission returns the gate remote requests execute under: the
// configured session limit when one is set, else a shared
// GOMAXPROCS-sized queueing gate built on first use.
func (d *DataCloud) clientAdmission() *admission {
	if d.admit != nil {
		return d.admit
	}
	d.clientGateOnce.Do(func() {
		d.clientGate = &admission{slots: make(chan struct{}, runtime.GOMAXPROCS(0))}
	})
	return d.clientGate
}

// clientResponder handles client-plane methods for ONE connection: the
// tenant announced in the connection's Hello is held here and stamped
// onto every request the connection executes.
type clientResponder struct {
	dc   *DataCloud
	gate *admission

	mu     sync.Mutex
	tenant string
}

// setTenant records the Hello-announced tenant (a reconnecting peer
// re-runs its Hello on the fresh connection's responder).
func (r *clientResponder) setTenant(tenant string) {
	r.mu.Lock()
	r.tenant = tenant
	r.mu.Unlock()
}

// tenantName returns the connection's announced tenant ("" until a v3
// Hello names one).
func (r *clientResponder) tenantName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenant
}

// Serve implements transport.Responder.
func (r *clientResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case methodClientHello:
		var req clientHello
		if err := transport.Decode(body, &req); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: decoding client hello")
		}
		if req.Max < clientMinProtocolVersion || req.Min > clientProtocolVersion {
			return nil, secerr.New(secerr.CodeProtocolVersion,
				"sectopk: client speaks query plane v%d..v%d, this server v%d..v%d",
				req.Min, req.Max, clientMinProtocolVersion, clientProtocolVersion)
		}
		v := clientProtocolVersion
		if req.Max < v {
			v = req.Max
		}
		r.setTenant(req.Tenant)
		return transport.Encode(clientHelloReply{Version: v})
	case methodClientExecute:
		var wreq clientExecuteRequest
		if err := transport.Decode(body, &wreq); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: decoding execute request")
		}
		req, err := decodeWireRequest(&wreq)
		if err != nil {
			return nil, err
		}
		cfg := queryConfigFromWire(wreq.Options)
		cfg.queryID = wreq.Idempotency
		cfg.tenant = r.tenantName()
		ans, err := r.dc.execute(ctx, req, cfg, r.gate)
		if err != nil {
			return nil, err
		}
		payload, err := encodeWireAnswer(ans)
		if err != nil {
			return nil, err
		}
		return transport.Encode(clientExecuteReply{
			Answer:         payload,
			S2Calls:        ans.Traffic.S2Calls,
			FanOut:         ans.Traffic.FanOut,
			MergeFallbacks: ans.Traffic.MergeFallbacks,
			Epoch:          ans.Traffic.Epoch,
		})
	case methodClientApply:
		var wreq clientApplyRequest
		if err := transport.Decode(body, &wreq); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: decoding apply request")
		}
		delta, _, err := secio.ReadDelta(bytes.NewReader(wreq.Delta))
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: decoding delta")
		}
		epoch, err := r.dc.applyDelta(ctx, wreq.Relation, delta)
		if err != nil {
			return nil, err
		}
		return transport.Encode(clientApplyReply{Epoch: epoch})
	case methodClientCompact:
		var wreq clientCompactRequest
		if err := transport.Decode(body, &wreq); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: decoding compact request")
		}
		epoch, err := r.dc.Compact(ctx, wreq.Relation)
		if err != nil {
			return nil, err
		}
		return transport.Encode(clientApplyReply{Epoch: epoch})
	default:
		return nil, secerr.New(secerr.CodeUnknownMethod, "sectopk: unknown client method %q", method)
	}
}

// decodeWireRequest rebuilds a Request from its wire form; the token
// payload is parsed with the persistence codec of the request's
// workload. Malformed payloads fail with ErrInvalidToken, unknown
// workloads with ErrBadRequest.
func decodeWireRequest(wreq *clientExecuteRequest) (Request, error) {
	r := bytes.NewReader(wreq.Token)
	switch Workload(wreq.Workload) {
	case WorkloadTopK:
		tk, err := secio.ReadToken(r)
		if err != nil {
			return Request{}, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: decoding top-k token")
		}
		return Request{Relation: wreq.Relation, TopK: &Token{tk: tk}}, nil
	case WorkloadJoin:
		tk, err := secio.ReadJoinToken(r)
		if err != nil {
			return Request{}, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: decoding join token")
		}
		return Request{Relation: wreq.Relation, Join: &JoinToken{tk: tk}}, nil
	case WorkloadKNN:
		point, k, err := secio.ReadKNNToken(r)
		if err != nil {
			return Request{}, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: decoding kNN token")
		}
		return Request{Relation: wreq.Relation, KNN: &KNNToken{point: point, k: k}}, nil
	default:
		return Request{}, secerr.New(secerr.CodeBadRequest, "sectopk: unknown workload %q", wreq.Workload)
	}
}

// encodeWireAnswer serializes an answer with the persistence codec of
// its workload.
func encodeWireAnswer(ans *Answer) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch ans.Workload() {
	case WorkloadTopK:
		err = secio.WriteQueryResult(&buf, ans.TopK.items, ans.TopK.Depth, ans.TopK.Halted)
	case WorkloadJoin:
		err = secio.WriteJoinResult(&buf, ans.Join.tuples)
	case WorkloadKNN:
		err = secio.WriteKNNResult(&buf, ans.KNN.items)
	}
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInternal, err, "sectopk: encoding answer")
	}
	return buf.Bytes(), nil
}
