package sectopk_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/sectopk"
)

// serveCluster starts the cluster plane on a loopback TCP listener and
// returns its address plus a stop function that waits for the serving
// loop to exit.
func serveCluster(t testing.TB, dc *sectopk.DataCloud) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- dc.ServeCluster(ctx, l) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("ServeCluster did not return after context cancellation")
		}
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

// clusterMember is one member node of a test fleet.
type clusterMember struct {
	dc   *sectopk.DataCloud
	addr string
	stop func()
}

// clusterRig is a front door over a fleet of member data clouds sharing
// one crypto cloud: the "topk" relation is shard-partitioned across the
// members per the placement, and member 0 additionally hosts the "join"
// pair and the "knn" store whole.
type clusterRig struct {
	owner    *sectopk.Owner
	jowner   *sectopk.JoinOwner
	cc       *sectopk.CryptoCloud
	er       *sectopk.EncryptedRelation
	jr1, jr2 *sectopk.EncryptedJoinRelation
	ker      *sectopk.EncryptedKNNRelation
	members  []*clusterMember
	front    *sectopk.DataCloud
}

// newClusterRig builds the fleet. placements[i] lists the global shard
// indices member i hosts; nil placements distributes the relation's
// shards round-robin across n members.
func newClusterRig(t testing.TB, n int, placements [][]int) *clusterRig {
	t.Helper()
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts(sectopk.WithShards(4))...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	jowner, err := sectopk.NewJoinOwner(testOpts()...)
	if err != nil {
		t.Fatalf("NewJoinOwner: %v", err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ker, err := owner.EncryptKNN(demoRelation())
	if err != nil {
		t.Fatalf("EncryptKNN: %v", err)
	}
	j1, j2 := joinRelations()
	jr1, err := jowner.Encrypt(j1)
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := jowner.Encrypt(j2)
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	t.Cleanup(cc.Close)
	for _, reg := range []struct {
		id   string
		keys *sectopk.Keys
	}{{"topk", owner.Keys()}, {"knn", owner.Keys()}, {"join", jowner.Keys()}} {
		if err := cc.Register(reg.id, reg.keys); err != nil {
			t.Fatalf("Register %s: %v", reg.id, err)
		}
	}
	if placements == nil {
		placements = make([][]int, n)
		for s := 0; s < er.Shards(); s++ {
			placements[s%n] = append(placements[s%n], s)
		}
	}
	r := &clusterRig{owner: owner, jowner: jowner, cc: cc, er: er, jr1: jr1, jr2: jr2, ker: ker}
	var addrs []string
	for i, indices := range placements {
		dc := sectopk.NewDataCloud(testOpts(sectopk.WithMemberID(fmt.Sprintf("m%d", i)))...)
		t.Cleanup(dc.Close)
		if err := dc.ConnectLocal(ctx, cc); err != nil {
			t.Fatal(err)
		}
		sub, err := er.Subset(indices...)
		if err != nil {
			t.Fatalf("Subset(%v): %v", indices, err)
		}
		if err := dc.HostShards(ctx, "topk", sub); err != nil {
			t.Fatalf("HostShards member %d: %v", i, err)
		}
		if i == 0 {
			if err := dc.HostJoin(ctx, "join", jr1, jr2); err != nil {
				t.Fatal(err)
			}
			if err := dc.HostKNN(ctx, "knn", ker); err != nil {
				t.Fatal(err)
			}
		}
		addr, stop := serveCluster(t, dc)
		r.members = append(r.members, &clusterMember{dc: dc, addr: addr, stop: stop})
		addrs = append(addrs, addr)
	}
	front := sectopk.NewDataCloud(testOpts()...)
	t.Cleanup(front.Close)
	if err := front.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := front.HostCluster(ctx, addrs); err != nil {
		t.Fatalf("HostCluster(%d nodes): %v", len(addrs), err)
	}
	r.front = front
	return r
}

// singleReference hosts the full relation on one data cloud sharing the
// rig's crypto cloud — the oracle cluster answers must match.
func (r *clusterRig) singleReference(t testing.TB) *sectopk.DataCloud {
	t.Helper()
	dc := sectopk.NewDataCloud(testOpts()...)
	t.Cleanup(dc.Close)
	if err := dc.ConnectLocal(context.Background(), r.cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(context.Background(), "topk", r.er); err != nil {
		t.Fatal(err)
	}
	return dc
}

// TestClusterRevealedEquivalence pins the tentpole guarantee: for every
// fleet size, cluster answers for all three workloads are
// revealed-identical to a single node hosting everything.
func TestClusterRevealedEquivalence(t *testing.T) {
	ctx := context.Background()
	sizes := []int{1, 2, 4}
	if testing.Short() {
		sizes = []int{2}
	}
	queries := []sectopk.Query{
		{Attrs: []int{0, 1, 2}, K: 2},
		{Attrs: []int{0, 1}, K: 3},
	}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			r := newClusterRig(t, n, nil)
			single := r.singleReference(t)
			for _, q := range queries {
				tk, err := r.owner.Token(r.er, q)
				if err != nil {
					t.Fatal(err)
				}
				wantAns, err := single.Execute(ctx, sectopk.TopKRequest("topk", tk))
				if err != nil {
					t.Fatalf("single Execute: %v", err)
				}
				gotAns, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk))
				if err != nil {
					t.Fatalf("cluster Execute: %v", err)
				}
				want, err := r.owner.Reveal(r.er, wantAns.TopK)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.owner.Reveal(r.er, gotAns.TopK)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %+v: cluster %+v != single %+v", q, got, want)
				}
			}

			// Whole-relation workloads forward to the hosting member and
			// stay oracle-correct.
			jq := demoJoinQuery()
			jtk, err := r.jowner.Token(r.jr1, r.jr2, jq)
			if err != nil {
				t.Fatal(err)
			}
			jans, err := r.front.Execute(ctx, sectopk.JoinRequest("join", jtk))
			if err != nil {
				t.Fatalf("cluster join Execute: %v", err)
			}
			gotJoin, err := r.jowner.Reveal(jans.Join)
			if err != nil {
				t.Fatal(err)
			}
			j1, j2 := joinRelations()
			wantJoin, err := sectopk.PlainTopKJoin(j1, j2, jq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotJoin, wantJoin) {
				t.Fatalf("cluster join = %+v, want %+v", gotJoin, wantJoin)
			}

			ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: []int64{5, 5, 5}, K: 2})
			if err != nil {
				t.Fatal(err)
			}
			kans, err := r.front.Execute(ctx, sectopk.KNNRequest("knn", ktk))
			if err != nil {
				t.Fatalf("cluster knn Execute: %v", err)
			}
			gotKNN, err := r.owner.RevealKNN(r.ker, kans.KNN)
			if err != nil {
				t.Fatal(err)
			}
			wantKNN, err := sectopk.PlainKNN(demoRelation(), []int64{5, 5, 5}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotKNN, wantKNN) {
				t.Fatalf("cluster knn = %+v, want %+v", gotKNN, wantKNN)
			}
		})
	}
}

// TestClusterMergeBoundFallback forces the merge bound check to fail —
// an adversarially uneven placement plus a depth-1 cap leaves every
// shard's candidates uncertified — and pins that the exact-rescan
// fallback still produces the single-node answer, with the fallback
// recorded on the front door's leakage ledger.
func TestClusterMergeBoundFallback(t *testing.T) {
	ctx := context.Background()
	r := newClusterRig(t, 2, [][]int{{2}, {0, 1, 3}})
	single := r.singleReference(t)
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := single.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithMaxDepth(1)))
	if err != nil {
		t.Fatal(err)
	}
	gotAns, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithMaxDepth(1)))
	if err != nil {
		t.Fatalf("cluster Execute with depth cap: %v", err)
	}
	want, err := r.owner.Reveal(r.er, wantAns.TopK)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.owner.Reveal(r.er, gotAns.TopK)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback path: cluster %+v != single %+v", got, want)
	}
	var sawFallback bool
	for _, e := range r.front.LeakageEvents() {
		if strings.Contains(e, "ClusterMerge") {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("depth-capped cluster query did not take the merge-bound fallback")
	}
}

// TestClusterEpochPinAndReadOnly pins the front door's consistency
// surface: Epoch reports the placement's pin, a mismatched WithEpoch
// fails typed-stale, and mutations are rejected at the front door.
func TestClusterEpochPinAndReadOnly(t *testing.T) {
	ctx := context.Background()
	r := newClusterRig(t, 2, nil)
	epoch, err := r.front.Epoch("topk")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != r.er.Epoch() {
		t.Fatalf("front-door epoch %d, relation epoch %d", epoch, r.er.Epoch())
	}
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithEpoch(epoch+7))); !errors.Is(err, sectopk.ErrRelationStale) {
		t.Fatalf("mismatched pin: err = %v, want ErrRelationStale", err)
	}
	if _, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithEpoch(epoch))); err != nil {
		t.Fatalf("matching pin: %v", err)
	}
	if _, err := r.front.Compact(ctx, "topk"); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("Compact on cluster relation: err = %v, want ErrBadRequest", err)
	}
	// Workload mismatch resolves against the cluster registries too.
	if _, err := r.front.Execute(ctx, sectopk.KNNRequest("topk", &sectopk.KNNToken{})); !errors.Is(err, sectopk.ErrInvalidToken) && !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("workload mismatch: err = %v", err)
	}
	// The cluster surfaces through the hosting inventory.
	hosted := r.front.Hosted()
	for _, want := range []string{"topk", "join", "knn"} {
		found := false
		for _, id := range hosted {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Hosted() = %v, missing %q", hosted, want)
		}
	}
	if err := r.front.ClusterReachable(ctx); err != nil {
		t.Fatalf("ClusterReachable with live fleet: %v", err)
	}
	if err := r.front.HostCluster(ctx, []string{r.members[0].addr}); !errors.Is(err, sectopk.ErrRelationExists) {
		t.Fatalf("second HostCluster: err = %v, want ErrRelationExists", err)
	}
}

// TestClusterKillMemberMidQuery pins failure semantics: with a member
// down, cluster queries finish correct or fail typed (ErrUnavailable /
// ErrTransport) — never hang — and teardown leaks no goroutines.
func TestClusterKillMemberMidQuery(t *testing.T) {
	ctx := context.Background()
	baseline := runtime.NumGoroutine()
	r := newClusterRig(t, 2, nil)
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Warm query proves the fleet works.
	if _, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk)); err != nil {
		t.Fatalf("pre-kill Execute: %v", err)
	}
	// Kill member 1 mid-query: fire the query, then tear the member down
	// while it is (likely) executing.
	type outcome struct {
		ans *sectopk.Answer
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		ans, err := r.front.Execute(ctx, sectopk.TopKRequest("topk", tk))
		done <- outcome{ans, err}
	}()
	time.Sleep(10 * time.Millisecond)
	r.members[1].stop()
	r.members[1].dc.Close()
	select {
	case out := <-done:
		if out.err != nil {
			if !errors.Is(out.err, sectopk.ErrUnavailable) && !errors.Is(out.err, sectopk.ErrTransport) {
				t.Fatalf("mid-kill query failed untyped: %v", out.err)
			}
		} else if got, err := r.owner.Reveal(r.er, out.ans.TopK); err != nil || len(got) != 2 {
			t.Fatalf("mid-kill query answered wrong: %v (err %v)", got, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster query hung after member death")
	}
	// Every query after the kill fails typed, promptly.
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_, err = r.front.Execute(qctx, sectopk.TopKRequest("topk", tk))
	if !errors.Is(err, sectopk.ErrUnavailable) && !errors.Is(err, sectopk.ErrTransport) {
		t.Fatalf("post-kill query: err = %v, want ErrUnavailable or ErrTransport", err)
	}
	if err := r.front.ClusterReachable(ctx); err == nil {
		t.Fatal("ClusterReachable reports a dead member as reachable")
	}
	// Full teardown leaks nothing.
	r.front.Close()
	for _, m := range r.members {
		m.stop()
		m.dc.Close()
	}
	r.cc.Close()
	waitForGoroutines(t, baseline+2)
}

// TestShardSubsetLifecycle pins the provisioning artifact: cutting,
// persistence, placement validation, and the member-side handoff.
func TestShardSubsetLifecycle(t *testing.T) {
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts(sectopk.WithShards(4))...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := er.Subset(); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("empty subset: err = %v", err)
	}
	if _, err := er.Subset(0, 4); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("out-of-range subset: err = %v", err)
	}
	if _, err := er.Subset(1, 1); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("duplicate subset: err = %v", err)
	}
	sub, err := er.Subset(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total() != 4 || !reflect.DeepEqual(sub.Indices(), []int{1, 3}) || sub.Epoch() != 1 {
		t.Fatalf("subset metadata: total=%d indices=%v epoch=%d", sub.Total(), sub.Indices(), sub.Epoch())
	}
	path := t.TempDir() + "/subset.er"
	if err := sub.Save(path); err != nil {
		t.Fatal(err)
	}
	sub2, err := sectopk.LoadShardSubset(path)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Total() != sub.Total() || !reflect.DeepEqual(sub2.Indices(), sub.Indices()) || sub2.Rows() != sub.Rows() {
		t.Fatalf("reloaded subset changed: %v vs %v", sub2.Indices(), sub.Indices())
	}

	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("demo", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	dc := sectopk.NewDataCloud(testOpts(sectopk.WithMemberID("m0"))...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.HostShards(ctx, "demo", sub2); err != nil {
		t.Fatalf("HostShards: %v", err)
	}
	if got := dc.HostedShardSubsets(); !reflect.DeepEqual(got["demo"], []int{1, 3}) {
		t.Fatalf("HostedShardSubsets = %v", got)
	}
	if dc.MemberID() != "m0" {
		t.Fatalf("MemberID = %q", dc.MemberID())
	}
	// Re-hosting the same id is a handoff: the subset swaps in place.
	bigger, err := er.Subset(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.HostShards(ctx, "demo", bigger); err != nil {
		t.Fatalf("handoff HostShards: %v", err)
	}
	if got := dc.HostedShardSubsets(); !reflect.DeepEqual(got["demo"], []int{0, 1, 3}) {
		t.Fatalf("post-handoff subsets = %v", got)
	}
	if dc.HandoffInFlight() {
		t.Fatal("HandoffInFlight still true after swap")
	}
	// A subset under foreign key material is rejected at handoff.
	other, err := sectopk.NewOwner(testOpts(sectopk.WithShards(4))...)
	if err != nil {
		t.Fatal(err)
	}
	erOther, err := other.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	subOther, err := erOther.Subset(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.HostShards(ctx, "demo", subOther); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("foreign-key handoff: err = %v, want ErrBadRequest", err)
	}
	// The id collides with every other registry.
	if err := dc.Host(ctx, "demo", er); !errors.Is(err, sectopk.ErrRelationExists) {
		t.Fatalf("Host over shard subset id: err = %v, want ErrRelationExists", err)
	}
}

// TestHostClusterPlacementGap pins that a fleet whose subsets do not
// tile the relation is rejected at assembly, naming the unhosted shards.
func TestHostClusterPlacementGap(t *testing.T) {
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts(sectopk.WithShards(4))...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("topk", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	member := sectopk.NewDataCloud(testOpts(sectopk.WithMemberID("m0"))...)
	defer member.Close()
	if err := member.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	sub, err := er.Subset(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := member.HostShards(ctx, "topk", sub); err != nil {
		t.Fatal(err)
	}
	addr, _ := serveCluster(t, member)
	front := sectopk.NewDataCloud(testOpts()...)
	defer front.Close()
	if err := front.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	err = front.HostCluster(ctx, []string{addr})
	if err == nil || !strings.Contains(err.Error(), "unhosted") {
		t.Fatalf("gap placement accepted: err = %v", err)
	}
	// A dead address fails typed-unavailable.
	l, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatal(lerr)
	}
	dead := l.Addr().String()
	l.Close()
	if err := front.HostCluster(ctx, []string{dead}); !errors.Is(err, sectopk.ErrUnavailable) {
		t.Fatalf("dead member dial: err = %v, want ErrUnavailable", err)
	}
}
