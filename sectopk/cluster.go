package sectopk

import (
	"context"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/paillier"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/shard"
	"repro/internal/transport"
)

// Scaling out. A relation's P round-robin shards need not live in one
// process: the owner cuts the encrypted relation into ShardSubsets, each
// member data cloud hosts one subset (HostShards + ServeCluster), and a
// front-door data cloud assembles the placement (HostCluster) and serves
// queries against it through the same Execute/Session surface as a
// local relation. Top-k queries fan out to every member and merge under
// the NRA bound check (internal/cluster); join and kNN relations are not
// shard-partitioned, so a member announces them whole and the front door
// forwards those queries to it over the ordinary client wire. Cluster
// answers are revealed-identical to a single node hosting everything.

// ShardSubset is the provisioning artifact for one cluster member: a
// subset of a relation's round-robin shards plus the placement metadata
// — the global shard count, the subset's global indices, the relation
// epoch, and the shared public key — a coordinator needs to validate
// that the members jointly tile the relation.
type ShardSubset struct {
	total   int
	indices []int
	shards  []*core.EncryptedRelation
	epoch   uint64
	pk      *paillier.PublicKey
}

// Subset cuts a member's provisioning subset out of an encrypted
// relation: the shards at the given global indices. Indices must be
// in-range and distinct; the full set 0..P-1 is a valid (single-member)
// subset.
func (er *EncryptedRelation) Subset(indices ...int) (*ShardSubset, error) {
	if len(indices) == 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: subset selects no shards")
	}
	total := len(er.sh.Shards)
	seen := make(map[int]bool, len(indices))
	shards := make([]*core.EncryptedRelation, len(indices))
	for i, ix := range indices {
		if ix < 0 || ix >= total {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: shard index %d out of range [0,%d)", ix, total)
		}
		if seen[ix] {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: duplicate shard index %d", ix)
		}
		seen[ix] = true
		shards[i] = er.sh.Shards[ix]
	}
	return &ShardSubset{
		total:   total,
		indices: append([]int(nil), indices...),
		shards:  shards,
		epoch:   er.Epoch(),
		pk:      er.pk,
	}, nil
}

// Total returns the relation's global shard count P.
func (s *ShardSubset) Total() int { return s.total }

// Indices returns the subset's global shard indices.
func (s *ShardSubset) Indices() []int { return append([]int(nil), s.indices...) }

// Epoch returns the relation epoch the subset was cut at.
func (s *ShardSubset) Epoch() uint64 { return s.epoch }

// Rows returns the number of rows hosted by this subset.
func (s *ShardSubset) Rows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.N
	}
	return n
}

// Save persists the subset for handoff to a member node. Only
// public/encrypted material is written.
func (s *ShardSubset) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteHostedSubset(w, s.total, s.indices, s.shards, s.epoch, s.pk)
	})
}

// LoadShardSubset reads a member's provisioning subset.
func LoadShardSubset(path string) (*ShardSubset, error) {
	var out *ShardSubset
	err := loadFrom(path, func(r io.Reader) error {
		total, indices, shards, epoch, pk, err := secio.ReadHostedSubset(r)
		if err != nil {
			return err
		}
		out = &ShardSubset{total: total, indices: indices, shards: shards, epoch: epoch, pk: pk}
		return nil
	})
	return out, err
}

// hostedShards is one shard subset this data cloud serves as a cluster
// member. Like hostedRelation, the engine/subset pair is swapped
// atomically under mu — a handoff (re-provisioning via HostShards)
// replaces both while in-flight candidate scans keep the old engine.
type hostedShards struct {
	client *cloud.Client

	mu     sync.Mutex
	engine *shard.Engine
	sub    *ShardSubset
}

// hostedView builds the cluster-plane announcement for the subset's
// current state.
func (hs *hostedShards) hostedView(relation string) *cluster.Hosted {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	sub := hs.sub
	rows := make([]int, len(sub.shards))
	for i, s := range sub.shards {
		rows[i] = s.N
	}
	return &cluster.Hosted{
		Engine: hs.engine,
		Info: cluster.SubsetInfo{
			Relation: relation,
			Total:    sub.total,
			Indices:  append([]int(nil), sub.indices...),
			Rows:     rows,
			M:        sub.shards[0].M, MaxScoreBits: sub.shards[0].MaxScoreBits,
			Epoch: sub.epoch, PK: sub.pk.N,
		},
	}
}

// hostedView announces a fully hosted relation as the complete subset
// 0..P-1, so a node hosting a whole relation can serve as the
// single-member degenerate cluster.
func (h *hostedRelation) hostedView(relation string) *cluster.Hosted {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := len(h.er.sh.Shards)
	indices := make([]int, p)
	rows := make([]int, p)
	for i, s := range h.er.sh.Shards {
		indices[i] = i
		rows[i] = s.N
	}
	return &cluster.Hosted{
		Engine: h.engine,
		Info: cluster.SubsetInfo{
			Relation: relation,
			Total:    p,
			Indices:  indices,
			Rows:     rows,
			M:        h.er.sh.M, MaxScoreBits: h.er.sh.MaxScoreBits,
			Epoch: h.state.Epoch, PK: h.er.pk.N,
		},
	}
}

// HostShards registers a relation's shard subset under id, making this
// data cloud a cluster member for it (serve the cluster plane with
// ServeCluster). Hosting an id that already serves a subset is a shard
// handoff: the engine is rebuilt over the new subset and swapped in
// atomically — in-flight candidate scans finish on the old engine, and
// readiness probes report the handoff while it runs (HandoffInFlight).
// The replacement must be encrypted under the same key material.
func (d *DataCloud) HostShards(ctx context.Context, id string, sub *ShardSubset) error {
	if id == "" || sub == nil || len(sub.shards) == 0 {
		return secerr.New(secerr.CodeBadRequest, "sectopk: missing relation id or shard subset")
	}
	caller, err := d.connectedCaller()
	if err != nil {
		return err
	}
	d.mu.Lock()
	existing := d.shardHosts[id]
	if existing == nil {
		if err := d.hostableLocked(id); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	d.mu.Unlock()
	if existing != nil {
		return d.handoffShards(id, existing, sub)
	}
	client, err := cloud.NewClient(caller, sub.pk, d.ledger, append(d.cfg.cloudOptions(), cloud.WithRelation(id))...)
	if err != nil {
		return err
	}
	if err := client.Handshake(ctx); err != nil {
		client.Close()
		return err
	}
	sh, err := shard.New(sub.shards)
	if err != nil {
		client.Close()
		return err
	}
	engine, err := shard.NewEngine(client, sh)
	if err != nil {
		client.Close()
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.hostableLocked(id); err != nil {
		client.Close()
		return err
	}
	d.shardHosts[id] = &hostedShards{client: client, engine: engine, sub: sub}
	return nil
}

// handoffShards swaps a hosted subset for its replacement.
func (d *DataCloud) handoffShards(id string, hs *hostedShards, sub *ShardSubset) error {
	hs.mu.Lock()
	samePK := hs.sub.pk.N.Cmp(sub.pk.N) == 0
	hs.mu.Unlock()
	if !samePK {
		return secerr.New(secerr.CodeBadRequest,
			"sectopk: handoff subset for %q is encrypted under different key material", id)
	}
	d.mu.Lock()
	d.handoffs++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.handoffs--
		d.mu.Unlock()
	}()
	sh, err := shard.New(sub.shards)
	if err != nil {
		return err
	}
	engine, err := shard.NewEngine(hs.client, sh)
	if err != nil {
		return err
	}
	hs.mu.Lock()
	hs.engine = engine
	hs.sub = sub
	hs.mu.Unlock()
	return nil
}

// HandoffInFlight reports whether a shard handoff (a replacing
// HostShards) is currently swapping engines; readiness probes report 503
// while it is.
func (d *DataCloud) HandoffInFlight() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.handoffs > 0
}

// MemberID returns this node's cluster identity (WithMemberID; empty
// when unset — the front door then identifies the member by address).
func (d *DataCloud) MemberID() string { return d.cfg.memberID }

// HostedShardSubsets reports the shard subsets this member serves:
// relation id to the hosted global shard indices.
func (d *DataCloud) HostedShardSubsets() map[string][]int {
	d.mu.Lock()
	hosts := make(map[string]*hostedShards, len(d.shardHosts))
	for id, hs := range d.shardHosts {
		hosts[id] = hs
	}
	d.mu.Unlock()
	out := make(map[string][]int, len(hosts))
	for id, hs := range hosts {
		hs.mu.Lock()
		out[id] = append([]int(nil), hs.sub.indices...)
		hs.mu.Unlock()
	}
	return out
}

// clusterInventory adapts the data cloud's registries to the member-side
// cluster plane: shard subsets (and fully hosted relations, announced as
// complete subsets) fan in to the coordinator's merge; join and kNN
// relations announce as whole-relation routes.
type clusterInventory struct{ d *DataCloud }

func (v *clusterInventory) Member() string { return v.d.cfg.memberID }

func (v *clusterInventory) Subsets() []*cluster.Hosted {
	d := v.d
	d.mu.Lock()
	hosts := make(map[string]*hostedShards, len(d.shardHosts))
	for id, hs := range d.shardHosts {
		hosts[id] = hs
	}
	full := make(map[string]*hostedRelation, len(d.relations))
	for id, h := range d.relations {
		full[id] = h
	}
	d.mu.Unlock()
	out := make([]*cluster.Hosted, 0, len(hosts)+len(full))
	for id, hs := range hosts {
		out = append(out, hs.hostedView(id))
	}
	for id, h := range full {
		out = append(out, h.hostedView(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Relation < out[j].Info.Relation })
	return out
}

func (v *clusterInventory) Subset(relation string) (*cluster.Hosted, bool) {
	d := v.d
	d.mu.Lock()
	hs := d.shardHosts[relation]
	h := d.relations[relation]
	d.mu.Unlock()
	switch {
	case hs != nil:
		return hs.hostedView(relation), true
	case h != nil:
		return h.hostedView(relation), true
	}
	return nil, false
}

func (v *clusterInventory) Routes() []cluster.RouteInfo {
	d := v.d
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]cluster.RouteInfo, 0, len(d.joins)+len(d.knns))
	for id := range d.joins {
		out = append(out, cluster.RouteInfo{Relation: id, Workload: string(WorkloadJoin)})
	}
	for id := range d.knns {
		out = append(out, cluster.RouteInfo{Relation: id, Workload: string(WorkloadKNN)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relation < out[j].Relation })
	return out
}

// Begin brackets one candidate execution into the same drain accounting
// and admission gate remote client queries run under, so a member's
// concurrency bound holds whether load arrives from queriers or from a
// front door.
func (v *clusterInventory) Begin(ctx context.Context) (func(), error) {
	d := v.d
	if err := d.beginExecute(); err != nil {
		return nil, err
	}
	gate := d.clientAdmission()
	if err := gate.acquire(ctx); err != nil {
		d.endExecute()
		return nil, err
	}
	return func() {
		gate.release()
		d.endExecute()
	}, nil
}

// clusterResponder serves the cluster plane and falls through to the
// client plane, so one member listener answers coordinators (Hello,
// Candidates) and forwarded whole-relation queries (Client.Execute)
// alike.
type clusterResponder struct {
	inv    *clusterInventory
	client *clientResponder
}

func (r *clusterResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	out, handled, err := cluster.Respond(ctx, r.inv, method, body)
	if handled {
		return out, err
	}
	return r.client.Serve(ctx, method, body)
}

// ServeCluster accepts cluster-plane connections on the listener: a
// front door's coordinator fan-outs, plus ordinary client-wire requests
// it forwards for whole-relation workloads. Admission, drain, and error
// semantics match ServeClients.
func (d *DataCloud) ServeCluster(ctx context.Context, l net.Listener) error {
	responder := &clusterResponder{
		inv:    &clusterInventory{d: d},
		client: &clientResponder{dc: d, gate: d.clientAdmission()},
	}
	return transport.ServeWith(ctx, l, responder, transport.ServeOptions{Drain: d.cfg.drainTimeout})
}

// clusterNode is one dialed member of the hosted cluster.
type clusterNode struct {
	addr   string
	member string
	conn   transport.ConnCaller
}

// clusterCoord is one relation's assembled placement: the coordinator
// plus the front door's own S2 client the merge rounds run on.
type clusterCoord struct {
	coord  *cluster.Coordinator
	client *cloud.Client
}

// clusterRoute is one whole-relation workload forwarded to the member
// hosting it.
type clusterRoute struct {
	workload Workload
	member   string
	node     *clusterNode
}

// hostedCluster is the front door's view of the member fleet.
type hostedCluster struct {
	nodes  []*clusterNode
	coords map[string]*clusterCoord
	routes map[string]*clusterRoute
}

func (cl *hostedCluster) close() {
	for _, cc := range cl.coords {
		cc.client.Close()
	}
	for _, n := range cl.nodes {
		n.conn.Close()
	}
}

// clusterHello runs the cluster-plane version handshake and returns the
// member's inventory.
func clusterHello(ctx context.Context, caller transport.Caller) (*cluster.HelloReply, error) {
	req := cluster.HelloRequest{Min: cluster.MinProtocolVersion, Max: cluster.ProtocolVersion}
	var rep cluster.HelloReply
	if err := caller.Call(ctx, cluster.MethodHello, req, &rep); err != nil {
		return nil, err
	}
	if rep.Version < cluster.MinProtocolVersion || rep.Version > cluster.ProtocolVersion {
		return nil, secerr.New(secerr.CodeProtocolVersion,
			"sectopk: member negotiated cluster wire v%d, this node speaks v%d..v%d",
			rep.Version, cluster.MinProtocolVersion, cluster.ProtocolVersion)
	}
	return &rep, nil
}

// HostCluster makes this data cloud the front door of a member fleet: it
// dials each node's cluster listener, learns the members' inventories
// from their Hellos, validates that every announced shard subset tiles
// its relation exactly, and registers a coordinator per sharded relation
// plus a forwarding route per whole-hosted join/kNN relation. The data
// cloud must already be connected to the crypto cloud — the merge rounds
// run on its own S2 link. Queries then flow through the ordinary
// Execute/Session surface; cluster-hosted relations are read-only here
// (mutate at the owner and re-provision the members). One cluster per
// data cloud; a second HostCluster fails typed.
func (d *DataCloud) HostCluster(ctx context.Context, nodes []string) error {
	if len(nodes) == 0 {
		return secerr.New(secerr.CodeBadRequest, "sectopk: cluster has no member nodes")
	}
	caller, err := d.connectedCaller()
	if err != nil {
		return err
	}
	d.mu.Lock()
	already := d.cluster != nil
	d.mu.Unlock()
	if already {
		return secerr.New(secerr.CodeRelationExists, "sectopk: a cluster is already hosted")
	}
	cl := &hostedCluster{coords: map[string]*clusterCoord{}, routes: map[string]*clusterRoute{}}
	fail := func(err error) error {
		cl.close()
		return err
	}
	contribs := map[string][]cluster.Contribution{}
	for _, addr := range nodes {
		var dialer net.Dialer
		conn, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			return fail(secerr.Wrap(secerr.CodeUnavailable, err, "sectopk: dialing cluster member %s", addr))
		}
		mc, err := transport.Connect(ctx, conn, d.stats)
		if err != nil {
			conn.Close()
			return fail(secerr.Wrap(secerr.CodeUnavailable, err, "sectopk: connecting cluster member %s", addr))
		}
		node := &clusterNode{addr: addr, conn: mc}
		cl.nodes = append(cl.nodes, node)
		rep, err := clusterHello(ctx, mc)
		if err != nil {
			return fail(secerr.Wrap(secerr.CodeOf(err), err, "sectopk: cluster member %s hello", addr))
		}
		node.member = rep.Member
		if node.member == "" {
			node.member = addr
		}
		for _, info := range rep.Subsets {
			contribs[info.Relation] = append(contribs[info.Relation],
				cluster.Contribution{Member: node.member, Caller: mc, Info: info})
		}
		for _, rt := range rep.Routes {
			if prev := cl.routes[rt.Relation]; prev != nil {
				return fail(secerr.New(secerr.CodeBadRequest,
					"sectopk: relation %q hosted whole by both %s and %s", rt.Relation, prev.member, node.member))
			}
			cl.routes[rt.Relation] = &clusterRoute{workload: Workload(rt.Workload), member: node.member, node: node}
		}
	}
	for rel, ms := range contribs {
		if rt := cl.routes[rel]; rt != nil {
			return fail(secerr.New(secerr.CodeBadRequest,
				"sectopk: relation %q announced both sharded and whole (member %s)", rel, rt.member))
		}
		pk, err := paillier.NewPublicKeyFromN(ms[0].Info.PK)
		if err != nil {
			return fail(secerr.Wrap(secerr.CodeBadRequest, err,
				"sectopk: member %s announced relation %q with bad key material", ms[0].Member, rel))
		}
		client, err := cloud.NewClient(caller, pk, d.ledger,
			append(d.cfg.cloudOptions(), cloud.WithRelation(rel))...)
		if err != nil {
			return fail(err)
		}
		if err := client.Handshake(ctx); err != nil {
			client.Close()
			return fail(err)
		}
		coord, err := cluster.NewCoordinator(client, rel, ms)
		if err != nil {
			client.Close()
			return fail(err)
		}
		cl.coords[rel] = &clusterCoord{coord: coord, client: client}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cluster != nil {
		return fail(secerr.New(secerr.CodeRelationExists, "sectopk: a cluster is already hosted"))
	}
	for rel := range cl.coords {
		if err := d.hostableLocked(rel); err != nil {
			return fail(err)
		}
	}
	for rel := range cl.routes {
		if err := d.hostableLocked(rel); err != nil {
			return fail(err)
		}
	}
	d.cluster = cl
	return nil
}

// clusterView snapshots the hosted cluster (nil when none).
func (d *DataCloud) clusterView() *hostedCluster {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cluster
}

// ClusterNodes returns the member addresses of the hosted cluster (nil
// when this data cloud is not a front door).
func (d *DataCloud) ClusterNodes() []string {
	cl := d.clusterView()
	if cl == nil {
		return nil
	}
	out := make([]string, len(cl.nodes))
	for i, n := range cl.nodes {
		out[i] = n.addr
	}
	return out
}

// ClusterRelations returns the relation ids served through the cluster,
// sorted.
func (d *DataCloud) ClusterRelations() []string {
	cl := d.clusterView()
	if cl == nil {
		return nil
	}
	out := make([]string, 0, len(cl.coords)+len(cl.routes))
	for id := range cl.coords {
		out = append(out, id)
	}
	for id := range cl.routes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ClusterReachable pings every cluster member (a Hello round each) and
// returns a typed unavailable error naming the first member that does
// not answer. Readiness probes report coordinator reachability with it.
func (d *DataCloud) ClusterReachable(ctx context.Context) error {
	cl := d.clusterView()
	if cl == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: no cluster hosted")
	}
	for _, n := range cl.nodes {
		if _, err := clusterHello(ctx, n.conn); err != nil {
			return secerr.Wrap(secerr.CodeUnavailable, err, "sectopk: cluster member %s unreachable", n.member)
		}
	}
	return nil
}

// clusterMutable rejects mutations aimed at cluster-hosted relations:
// the front door is read-only — owners mutate the source relation and
// re-provision the member subsets, then re-assemble the placement.
func (d *DataCloud) clusterMutable(relation string) error {
	cl := d.clusterView()
	if cl == nil {
		return nil
	}
	if cl.coords[relation] != nil || cl.routes[relation] != nil {
		return secerr.New(secerr.CodeBadRequest,
			"sectopk: relation %q is cluster-hosted and read-only at the front door; re-provision the members to mutate it", relation)
	}
	return nil
}

// clusterAnswer executes a request against the hosted cluster when its
// relation is cluster-served. handled=false means the relation is not
// cluster-hosted and the caller should resolve it locally.
func (d *DataCloud) clusterAnswer(ctx context.Context, w Workload, req Request, cfg queryConfig) (*Answer, bool, error) {
	cl := d.clusterView()
	if cl == nil {
		return nil, false, nil
	}
	if cc := cl.coords[req.Relation]; cc != nil {
		if w != WorkloadTopK {
			return nil, true, secerr.New(secerr.CodeUnknownRelation,
				"sectopk: relation %q is cluster-hosted for %s queries, not %s", req.Relation, WorkloadTopK, w)
		}
		// The placement pins one epoch for its whole lifetime (members
		// reject any other), so the front-door pin check mirrors the
		// local-snapshot one.
		if cfg.epoch != 0 && cfg.epoch != cc.coord.Epoch() {
			return nil, true, secerr.New(secerr.CodeRelationStale,
				"sectopk: query pinned to epoch %d, cluster placement of %q is at epoch %d",
				cfg.epoch, req.Relation, cc.coord.Epoch())
		}
		res, err := cc.coord.SecQuery(ctx, req.TopK.tk, cfg.coreOptions())
		if err != nil {
			return nil, true, err
		}
		ans := &Answer{TopK: &EncryptedResult{items: res.Items, Depth: res.Depth, Halted: res.Halted}}
		ans.Traffic.FanOut = cc.coord.Members()
		ans.Traffic.Epoch = cc.coord.Epoch()
		return ans, true, nil
	}
	if rt := cl.routes[req.Relation]; rt != nil {
		if w != rt.workload {
			return nil, true, secerr.New(secerr.CodeUnknownRelation,
				"sectopk: relation %q is cluster-hosted for %s queries, not %s", req.Relation, rt.workload, w)
		}
		ans, err := d.forwardExecute(ctx, rt, req, w, cfg)
		return ans, true, err
	}
	return nil, false, nil
}

// forwardExecute ships a whole-relation query to the member hosting it
// over the client wire and decodes the answer, so forwarded queries keep
// the exact error taxonomy and result encoding of direct ones.
func (d *DataCloud) forwardExecute(ctx context.Context, rt *clusterRoute, req Request, w Workload, cfg queryConfig) (*Answer, error) {
	token, err := encodeWireToken(req, w)
	if err != nil {
		return nil, err
	}
	wreq := clientExecuteRequest{
		Relation:    req.Relation,
		Workload:    string(w),
		Token:       token,
		Options:     cfg.wire(),
		Idempotency: cfg.queryID,
	}
	var rep clientExecuteReply
	if err := rt.node.conn.Call(ctx, methodClientExecute, wreq, &rep); err != nil {
		if secerr.CodeOf(err) == secerr.CodeTransport {
			return nil, secerr.Wrap(secerr.CodeUnavailable, err, "sectopk: cluster member %s unreachable", rt.member)
		}
		return nil, err
	}
	ans, err := decodeWireAnswer(w, rep.Answer)
	if err != nil {
		return nil, err
	}
	// Carry the member's span fields through the front door (zero from a
	// pre-v3 member; the front door's own rounds/bytes delta overwrites
	// the wire-level counters either way).
	ans.Traffic.S2Calls = rep.S2Calls
	ans.Traffic.FanOut = rep.FanOut
	ans.Traffic.MergeFallbacks = rep.MergeFallbacks
	ans.Traffic.Epoch = rep.Epoch
	return ans, nil
}
