package sectopk_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/sectopk"
)

// joinRelations returns a small pair with matching join-attribute values
// and distinct top-k scores, so revealed results are order-deterministic.
func joinRelations() (*sectopk.Relation, *sectopk.Relation) {
	r1 := &sectopk.Relation{Name: "r1", Rows: [][]int64{
		{1, 10, 2},
		{2, 8, 3},
		{3, 5, 1},
		{1, 7, 4},
	}}
	r2 := &sectopk.Relation{Name: "r2", Rows: [][]int64{
		{1, 6, 9},
		{2, 2, 2},
		{4, 1, 1},
		{3, 3, 3},
	}}
	return r1, r2
}

func demoJoinQuery() sectopk.JoinQuery {
	return sectopk.JoinQuery{
		JoinAttr1: 0, JoinAttr2: 0,
		ScoreAttr1: 1, ScoreAttr2: 1,
		Project1: []int{0, 2}, Project2: []int{2},
		K: 2,
	}
}

// fullRig hosts all three workloads on one data cloud: "topk" (the demo
// relation), "join" (the join pair), and "knn" (the demo relation as a
// kNN record store).
type fullRig struct {
	owner    *sectopk.Owner
	jowner   *sectopk.JoinOwner
	cc       *sectopk.CryptoCloud
	dc       *sectopk.DataCloud
	er       *sectopk.EncryptedRelation
	jr1, jr2 *sectopk.EncryptedJoinRelation
	ker      *sectopk.EncryptedKNNRelation
}

func newFullRig(t testing.TB, opts ...sectopk.Option) *fullRig {
	t.Helper()
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts(opts...)...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	jowner, err := sectopk.NewJoinOwner(testOpts(opts...)...)
	if err != nil {
		t.Fatalf("NewJoinOwner: %v", err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ker, err := owner.EncryptKNN(demoRelation())
	if err != nil {
		t.Fatalf("EncryptKNN: %v", err)
	}
	j1, j2 := joinRelations()
	jr1, err := jowner.Encrypt(j1)
	if err != nil {
		t.Fatalf("join Encrypt r1: %v", err)
	}
	jr2, err := jowner.Encrypt(j2)
	if err != nil {
		t.Fatalf("join Encrypt r2: %v", err)
	}
	cc := sectopk.NewCryptoCloud(testOpts(opts...)...)
	t.Cleanup(cc.Close)
	if err := cc.Register("topk", owner.Keys()); err != nil {
		t.Fatalf("Register topk: %v", err)
	}
	if err := cc.Register("knn", owner.Keys()); err != nil {
		t.Fatalf("Register knn: %v", err)
	}
	if err := cc.Register("join", jowner.Keys()); err != nil {
		t.Fatalf("Register join: %v", err)
	}
	dc := sectopk.NewDataCloud(testOpts(opts...)...)
	t.Cleanup(dc.Close)
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatalf("ConnectLocal: %v", err)
	}
	if err := dc.Host(ctx, "topk", er); err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := dc.HostJoin(ctx, "join", jr1, jr2); err != nil {
		t.Fatalf("HostJoin: %v", err)
	}
	if err := dc.HostKNN(ctx, "knn", ker); err != nil {
		t.Fatalf("HostKNN: %v", err)
	}
	return &fullRig{owner: owner, jowner: jowner, cc: cc, dc: dc, er: er, jr1: jr1, jr2: jr2, ker: ker}
}

// serveClients starts the client plane on a loopback TCP listener and
// returns its address plus a stop function that waits for the serving
// loop to exit.
func serveClients(t testing.TB, dc *sectopk.DataCloud) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- dc.ServeClients(ctx, l) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("ServeClients did not return after context cancellation")
		}
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

// TestExecuteUnified runs all three workloads through the single
// DataCloud.Execute entry point and checks each against its plaintext
// oracle.
func TestExecuteUnified(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()

	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := r.dc.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithHalting(sectopk.HaltingStrict)))
	if err != nil {
		t.Fatalf("Execute topk: %v", err)
	}
	if ans.Workload() != sectopk.WorkloadTopK || ans.TopK == nil {
		t.Fatalf("topk answer has wrong shape: %+v", ans)
	}
	got, err := r.owner.Reveal(r.er, ans.TopK)
	if err != nil {
		t.Fatal(err)
	}
	want := []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unified topk = %+v, want %+v", got, want)
	}
	if ans.Traffic.Rounds == 0 {
		t.Fatal("topk answer recorded no traffic")
	}

	j1, j2 := joinRelations()
	jq := demoJoinQuery()
	jtk, err := r.jowner.Token(r.jr1, r.jr2, jq)
	if err != nil {
		t.Fatal(err)
	}
	jans, err := r.dc.Execute(ctx, sectopk.JoinRequest("join", jtk))
	if err != nil {
		t.Fatalf("Execute join: %v", err)
	}
	gotJoin, err := r.jowner.Reveal(jans.Join)
	if err != nil {
		t.Fatal(err)
	}
	wantJoin, err := sectopk.PlainTopKJoin(j1, j2, jq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJoin, wantJoin) {
		t.Fatalf("unified join = %+v, want %+v", gotJoin, wantJoin)
	}

	point := []int64{5, 5, 5}
	ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: point, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	kans, err := r.dc.Execute(ctx, sectopk.KNNRequest("knn", ktk))
	if err != nil {
		t.Fatalf("Execute knn: %v", err)
	}
	gotKNN, err := r.owner.RevealKNN(r.ker, kans.KNN)
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := sectopk.PlainKNN(demoRelation(), point, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKNN, wantKNN) {
		t.Fatalf("unified knn = %+v, want %+v", gotKNN, wantKNN)
	}
}

// TestExecuteRequestValidation pins the unified surface's error
// taxonomy: malformed sums, workload mismatches, and unknown relations.
func TestExecuteRequestValidation(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: []int64{1, 1, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  sectopk.Request
		want error
	}{
		{"no token", sectopk.Request{Relation: "topk"}, sectopk.ErrInvalidToken},
		{"two tokens", sectopk.Request{Relation: "topk", TopK: tk, KNN: ktk}, sectopk.ErrBadRequest},
		{"no relation", sectopk.Request{TopK: tk}, sectopk.ErrBadRequest},
		{"unknown relation", sectopk.TopKRequest("ghost", tk), sectopk.ErrUnknownRelation},
		{"workload mismatch", sectopk.TopKRequest("knn", tk), sectopk.ErrUnknownRelation},
		{"knn on topk relation", sectopk.KNNRequest("topk", ktk), sectopk.ErrUnknownRelation},
	}
	for _, tc := range cases {
		if _, err := r.dc.Execute(ctx, tc.req); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestClientRemoteEquivalence is the acceptance pin: a sectopk.Client
// connected over real TCP executes a top-k, a top-k join, and a kNN
// request against one DataCloud, and the owner-revealed results are
// identical to the in-process path.
func TestClientRemoteEquivalence(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()
	addr, _ := serveClients(t, r.dc)
	client, err := sectopk.Dial(ctx, addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	// Top-k: remote vs in-process Session.
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := sectopk.TopKRequest("topk", tk, sectopk.WithMode(sectopk.ModeEliminate), sectopk.WithHalting(sectopk.HaltingStrict))
	remote, err := client.Execute(ctx, req)
	if err != nil {
		t.Fatalf("remote topk: %v", err)
	}
	local, err := r.dc.Execute(ctx, req)
	if err != nil {
		t.Fatalf("local topk: %v", err)
	}
	remoteRev, err := r.owner.Reveal(r.er, remote.TopK)
	if err != nil {
		t.Fatal(err)
	}
	localRev, err := r.owner.Reveal(r.er, local.TopK)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteRev, localRev) {
		t.Fatalf("remote topk = %+v, in-process = %+v", remoteRev, localRev)
	}
	if remote.TopK.Depth != local.TopK.Depth || remote.TopK.Halted != local.TopK.Halted {
		t.Fatalf("remote topk metadata (depth=%d halted=%v) differs from local (depth=%d halted=%v)",
			remote.TopK.Depth, remote.TopK.Halted, local.TopK.Depth, local.TopK.Halted)
	}
	if remote.Traffic.Rounds == 0 || remote.Traffic.Bytes == 0 {
		t.Fatalf("remote answer recorded no client-wire traffic: %+v", remote.Traffic)
	}

	// Join: remote vs in-process JoinSession.
	jq := demoJoinQuery()
	jtk, err := r.jowner.Token(r.jr1, r.jr2, jq)
	if err != nil {
		t.Fatal(err)
	}
	remoteJoin, err := client.Execute(ctx, sectopk.JoinRequest("join", jtk))
	if err != nil {
		t.Fatalf("remote join: %v", err)
	}
	sess, err := r.dc.NewJoinSession("join", jtk)
	if err != nil {
		t.Fatal(err)
	}
	localJoin, err := sess.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	remoteJRev, err := r.jowner.Reveal(remoteJoin.Join)
	if err != nil {
		t.Fatal(err)
	}
	localJRev, err := r.jowner.Reveal(localJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteJRev, localJRev) {
		t.Fatalf("remote join = %+v, in-process = %+v", remoteJRev, localJRev)
	}

	// kNN: remote vs in-process Execute.
	point := []int64{5, 5, 5}
	ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: point, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	remoteKNN, err := client.Execute(ctx, sectopk.KNNRequest("knn", ktk))
	if err != nil {
		t.Fatalf("remote knn: %v", err)
	}
	localKNN, err := r.dc.Execute(ctx, sectopk.KNNRequest("knn", ktk))
	if err != nil {
		t.Fatal(err)
	}
	remoteKRev, err := r.owner.RevealKNN(r.ker, remoteKNN.KNN)
	if err != nil {
		t.Fatal(err)
	}
	localKRev, err := r.owner.RevealKNN(r.ker, localKNN.KNN)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteKRev, localKRev) {
		t.Fatalf("remote knn = %+v, in-process = %+v", remoteKRev, localKRev)
	}

	// The client accounted for its own wire usage.
	if tr := client.Traffic(); tr.Rounds < 4 {
		t.Fatalf("client traffic counts %d rounds, want >= 4 (hello + three queries)", tr.Rounds)
	}
}

// TestClientErrorsAcrossWire pins that errors reported by the server
// match the same sentinels under errors.Is as in-process failures.
func TestClientErrorsAcrossWire(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()
	addr, _ := serveClients(t, r.dc)
	client, err := sectopk.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Execute(ctx, sectopk.TopKRequest("ghost", tk)); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("remote unknown relation: err = %v, want ErrUnknownRelation", err)
	}
	if _, err := client.Execute(ctx, sectopk.TopKRequest("join", tk)); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("remote workload mismatch: err = %v, want ErrUnknownRelation", err)
	}

	// A token issued for a differently-shaped relation must fail
	// validation with the same sentinel remotely as in-process. Querying
	// ALL five attributes makes the failure deterministic: the token's
	// permuted list positions cover [0,5), so at least one always falls
	// outside the hosted 3-attribute relation.
	other, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := other.Encrypt(&sectopk.Relation{Name: "wide", Rows: [][]int64{
		{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}, {2, 2, 2, 2, 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	badTk, err := other.Token(wide, sectopk.Query{Attrs: []int{0, 1, 2, 3, 4}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, localErr := r.dc.Execute(ctx, sectopk.TopKRequest("topk", badTk))
	_, remoteErr := client.Execute(ctx, sectopk.TopKRequest("topk", badTk))
	if !errors.Is(localErr, sectopk.ErrInvalidToken) {
		t.Fatalf("in-process invalid token: err = %v, want ErrInvalidToken", localErr)
	}
	if !errors.Is(remoteErr, sectopk.ErrInvalidToken) {
		t.Fatalf("remote invalid token: err = %v, want ErrInvalidToken", remoteErr)
	}

	// A kNN token whose dimensions do not match the hosted store (issued
	// for a 2-attribute store, sent to the 3-attribute one) fails the
	// server-side re-validation with the same sentinel both ways.
	narrow, err := r.owner.EncryptKNN(&sectopk.Relation{Name: "narrow", Rows: [][]int64{
		{1, 2}, {3, 4}, {5, 6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mismatch, err := r.owner.KNNToken(narrow, sectopk.KNNQuery{Point: []int64{1, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, localErr = r.dc.Execute(ctx, sectopk.KNNRequest("knn", mismatch))
	_, remoteErr = client.Execute(ctx, sectopk.KNNRequest("knn", mismatch))
	if !errors.Is(localErr, sectopk.ErrInvalidToken) {
		t.Fatalf("in-process kNN dimension mismatch: err = %v, want ErrInvalidToken", localErr)
	}
	if !errors.Is(remoteErr, sectopk.ErrInvalidToken) {
		t.Fatalf("remote kNN dimension mismatch: err = %v, want ErrInvalidToken", remoteErr)
	}

	// The request itself failing client-side validation never touches
	// the wire.
	if _, err := client.Execute(ctx, sectopk.Request{Relation: "topk"}); !errors.Is(err, sectopk.ErrInvalidToken) {
		t.Fatalf("empty request: err = %v, want ErrInvalidToken", err)
	}
}

// TestClientConcurrentOverTCP drives several clients with overlapping
// requests over one listener; every answer must reveal to the same
// pinned result (exercises the shedding admission gate — more in-flight
// requests than WithSessionLimit slots, absorbed by client retries —
// and per-connection multiplexing under -race).
func TestClientConcurrentOverTCP(t *testing.T) {
	r := newFullRig(t, sectopk.WithSessionLimit(3))
	ctx := context.Background()
	addr, _ := serveClients(t, r.dc)

	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}}

	const clients = 3
	const perClient = 2
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		client, err := sectopk.DialRetry(ctx, addr, sectopk.WithRetry(sectopk.RetryPolicy{
			Initial: 5 * time.Millisecond, Max: 100 * time.Millisecond, MaxElapsed: 2 * time.Minute,
		}))
		if err != nil {
			t.Fatalf("DialRetry client %d: %v", c, err)
		}
		defer client.Close()
		for q := 0; q < perClient; q++ {
			wg.Add(1)
			go func(cl *sectopk.Client) {
				defer wg.Done()
				ans, err := cl.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithHalting(sectopk.HaltingStrict)))
				if err != nil {
					errCh <- err
					return
				}
				got, err := r.owner.Reveal(r.er, ans.TopK)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errCh <- errors.New("concurrent client revealed wrong result")
				}
			}(client)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestServeClientsTeardownLeaksNoGoroutines checks the client plane's
// lifecycle: canceling the serve context stops the accept loop and every
// per-connection goroutine, client Close is idempotent, and nothing
// lingers after a served query.
func TestServeClientsTeardownLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := newFullRig(t)
	ctx := context.Background()
	addr, stop := serveClients(t, r.dc)

	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		client, err := sectopk.Dial(ctx, addr)
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		if _, err := client.Execute(ctx, sectopk.TopKRequest("topk", tk)); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
		if err := client.Close(); err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
		if err := client.Close(); err != nil {
			t.Fatalf("double Close %d: %v", i, err)
		}
		// A closed client fails fast with a transport error.
		if _, err := client.Execute(ctx, sectopk.TopKRequest("topk", tk)); !errors.Is(err, sectopk.ErrTransport) {
			t.Fatalf("Execute after Close: err = %v, want ErrTransport", err)
		}
	}

	// One client left open when the server tears down: its next call
	// fails with a transport error instead of hanging.
	open, err := sectopk.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := open.Execute(shortCtx, sectopk.TopKRequest("topk", tk)); err == nil {
		t.Fatal("Execute against a stopped server succeeded")
	}
	open.Close()

	r.dc.Close()
	r.cc.Close()
	waitForGoroutines(t, baseline)
}

// TestSessionPoolAllWorkloads extends the pool's admission control to
// join and kNN requests.
func TestSessionPoolAllWorkloads(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()

	jq := demoJoinQuery()
	jtk, err := r.jowner.Token(r.jr1, r.jr2, jq)
	if err != nil {
		t.Fatal(err)
	}
	jpool, err := r.dc.NewSessionPool("join", 2)
	if err != nil {
		t.Fatalf("NewSessionPool(join): %v", err)
	}
	jres, err := jpool.ExecuteJoin(ctx, jtk)
	if err != nil {
		t.Fatalf("pool ExecuteJoin: %v", err)
	}
	gotJoin, err := r.jowner.Reveal(jres)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := joinRelations()
	wantJoin, err := sectopk.PlainTopKJoin(j1, j2, jq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJoin, wantJoin) {
		t.Fatalf("pool join = %+v, want %+v", gotJoin, wantJoin)
	}

	ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: []int64{5, 5, 5}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	kpool, err := r.dc.NewSessionPool("knn", 2)
	if err != nil {
		t.Fatalf("NewSessionPool(knn): %v", err)
	}
	kres, err := kpool.ExecuteKNN(ctx, ktk)
	if err != nil {
		t.Fatalf("pool ExecuteKNN: %v", err)
	}
	gotKNN, err := r.owner.RevealKNN(r.ker, kres)
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := sectopk.PlainKNN(demoRelation(), []int64{5, 5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKNN, wantKNN) {
		t.Fatalf("pool knn = %+v, want %+v", gotKNN, wantKNN)
	}

	// A request naming a different relation than the pool's is rejected
	// before execution.
	if _, err := jpool.ExecuteRequest(ctx, sectopk.JoinRequest("topk", jtk)); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("pool relation mismatch: err = %v, want ErrBadRequest", err)
	}
	// A workload the pooled relation is not hosted for fails like the
	// unified path does.
	tk, err := r.owner.Token(r.er, sectopk.Query{Attrs: []int{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jpool.Execute(ctx, tk); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("pool workload mismatch: err = %v, want ErrUnknownRelation", err)
	}
	if _, err := r.dc.NewSessionPool("ghost", 1); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("pool over unknown relation: err = %v, want ErrUnknownRelation", err)
	}
}

// TestQueryPlanePersistence round-trips every new artifact through its
// Save/Load pair: join results, kNN relations/tokens/results, and both
// owner bundles — the restored owners must reveal results produced
// before persistence.
func TestQueryPlanePersistence(t *testing.T) {
	r := newFullRig(t)
	ctx := context.Background()
	dir := t.TempDir()

	// Join: execute, persist the encrypted result and the owner, reveal
	// with the restored owner.
	jq := demoJoinQuery()
	jtk, err := r.jowner.Token(r.jr1, r.jr2, jq)
	if err != nil {
		t.Fatal(err)
	}
	jans, err := r.dc.Execute(ctx, sectopk.JoinRequest("join", jtk))
	if err != nil {
		t.Fatal(err)
	}
	jresPath := filepath.Join(dir, "join-result")
	if err := jans.Join.Save(jresPath); err != nil {
		t.Fatalf("EncryptedJoinResult.Save: %v", err)
	}
	jres, err := sectopk.LoadEncryptedJoinResult(jresPath)
	if err != nil {
		t.Fatalf("LoadEncryptedJoinResult: %v", err)
	}
	jownerPath := filepath.Join(dir, "join-owner")
	if err := r.jowner.Save(jownerPath); err != nil {
		t.Fatalf("JoinOwner.Save: %v", err)
	}
	jowner2, err := sectopk.LoadJoinOwner(jownerPath)
	if err != nil {
		t.Fatalf("LoadJoinOwner: %v", err)
	}
	gotJoin, err := jowner2.Reveal(jres)
	if err != nil {
		t.Fatalf("restored JoinOwner.Reveal: %v", err)
	}
	j1, j2 := joinRelations()
	wantJoin, err := sectopk.PlainTopKJoin(j1, j2, jq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJoin, wantJoin) {
		t.Fatalf("restored join reveal = %+v, want %+v", gotJoin, wantJoin)
	}

	// kNN: persist the relation, token, result, and owner; a restored
	// owner must reveal a result produced by the original (the digest
	// key travels in the bundle).
	point := []int64{5, 5, 5}
	ktk, err := r.owner.KNNToken(r.ker, sectopk.KNNQuery{Point: point, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ktkPath := filepath.Join(dir, "knn-token")
	if err := ktk.Save(ktkPath); err != nil {
		t.Fatalf("KNNToken.Save: %v", err)
	}
	ktk2, err := sectopk.LoadKNNToken(ktkPath)
	if err != nil {
		t.Fatalf("LoadKNNToken: %v", err)
	}
	if ktk2.K() != 2 {
		t.Fatalf("restored kNN token k = %d, want 2", ktk2.K())
	}
	kerPath := filepath.Join(dir, "knn-relation")
	if err := r.ker.Save(kerPath); err != nil {
		t.Fatalf("EncryptedKNNRelation.Save: %v", err)
	}
	ker2, err := sectopk.LoadEncryptedKNNRelation(kerPath)
	if err != nil {
		t.Fatalf("LoadEncryptedKNNRelation: %v", err)
	}
	if ker2.Rows() != r.ker.Rows() || ker2.Attributes() != r.ker.Attributes() || ker2.Name() != r.ker.Name() {
		t.Fatalf("restored kNN relation shape %s %dx%d differs", ker2.Name(), ker2.Rows(), ker2.Attributes())
	}
	kans, err := r.dc.Execute(ctx, sectopk.KNNRequest("knn", ktk2))
	if err != nil {
		t.Fatalf("Execute with restored kNN token: %v", err)
	}
	kresPath := filepath.Join(dir, "knn-result")
	if err := kans.KNN.Save(kresPath); err != nil {
		t.Fatalf("EncryptedKNNResult.Save: %v", err)
	}
	kres, err := sectopk.LoadEncryptedKNNResult(kresPath)
	if err != nil {
		t.Fatalf("LoadEncryptedKNNResult: %v", err)
	}
	ownerPath := filepath.Join(dir, "owner")
	if err := r.owner.Save(ownerPath); err != nil {
		t.Fatalf("Owner.Save: %v", err)
	}
	owner2, err := sectopk.LoadOwner(ownerPath)
	if err != nil {
		t.Fatalf("LoadOwner: %v", err)
	}
	gotKNN, err := owner2.RevealKNN(ker2, kres)
	if err != nil {
		t.Fatalf("restored Owner.RevealKNN: %v", err)
	}
	wantKNN, err := sectopk.PlainKNN(demoRelation(), point, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKNN, wantKNN) {
		t.Fatalf("restored knn reveal = %+v, want %+v", gotKNN, wantKNN)
	}
}
