package sectopk

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/join"
	"repro/internal/mutate"
	"repro/internal/qos"
	"repro/internal/secerr"
	"repro/internal/shard"
	"repro/internal/transport"
)

// admission is one concurrency gate for DataCloud.execute. slots bounds
// the simultaneously executing requests (nil = unbounded); shed selects
// the overflow behavior — true fails a request arriving with every slot
// taken immediately with ErrOverloaded, false queues it until a slot
// frees or the context ends.
type admission struct {
	slots chan struct{}
	shed  bool
}

// acquire claims a slot (or returns a typed error); release must be
// called iff acquire returned nil.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil || a.slots == nil {
		return nil
	}
	if a.shed {
		select {
		case a.slots <- struct{}{}:
			return nil
		default:
			return secerr.New(secerr.CodeOverloaded,
				"sectopk: session limit %d reached, request shed", cap(a.slots))
		}
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sectopk: awaiting admission: %w", ctx.Err())
	}
}

func (a *admission) release() {
	if a != nil && a.slots != nil {
		<-a.slots
	}
}

// DataCloud is the data cloud role (S1): it hosts encrypted relations
// and executes queries by driving blinded protocol rounds against a
// CryptoCloud over its connected transport. It holds only public
// material — encrypted relations, public keys, and its own ephemeral
// blinding keys.
//
// Connect it exactly once (ConnectLocal, Connect, or Dial), then Host
// relations and open Sessions. All methods are safe for concurrent use.
// TCP connections negotiate the multiplexed wire v2 framing, so
// concurrent sessions keep many calls in flight on one connection; the
// batch scheduler (on by default, WithBatching(false) to disable)
// additionally coalesces their calls into batch envelopes.
type DataCloud struct {
	cfg    config
	ledger *cloud.Ledger
	stats  *transport.Stats

	// admit is the unified admission gate (WithSessionLimit): every
	// Execute — any workload, in-process or remote — claims a slot for
	// the duration of its run, and overflow sheds with ErrOverloaded.
	// nil means unbounded.
	admit *admission
	// clientGate lazily builds the remote plane's default gate when no
	// session limit was configured (see ServeClients).
	clientGateOnce sync.Once
	clientGate     *admission
	// qos is the per-tenant admission layer (WithTenantLimits). Always
	// non-nil: with no limits configured it admits everything but still
	// does deadline-aware shedding and per-tenant accounting.
	qos *qos.Limiter

	mu        sync.Mutex
	caller    transport.Caller     // what hosted clients issue rounds on
	conn      transport.ConnCaller // owning handle for a network transport
	batcher   *cloud.Batcher       // non-nil when batching is enabled
	relations map[string]*hostedRelation
	joins     map[string]*hostedJoin
	knns      map[string]*hostedKNN
	// shardHosts are the cluster-member subsets (HostShards); cluster is
	// the front-door placement (HostCluster); handoffs counts in-flight
	// HostShards replacements for readiness reporting.
	shardHosts map[string]*hostedShards
	cluster    *hostedCluster
	handoffs   int
	closed     bool

	// Drain state (WithDrainTimeout): once draining, new executes shed
	// with ErrOverloaded while the inflight ones run to completion;
	// drainDone is closed when the last one finishes.
	draining  bool
	inflight  int
	drainDone chan struct{}
}

// hostedRelation is one relation this data cloud serves queries for. The
// engine is the sharded one; an unsharded relation is its P = 1 case
// (which executes exactly the single core engine).
//
// Hosted state is versioned: queries take an immutable (engine, epoch)
// snapshot and run on it start to finish, while Apply/Compact build the
// next epoch copy-on-write and swap it in under mu. An in-flight query
// therefore always answers over exactly one epoch — the one it pinned
// (WithEpoch) or whatever was current when it started — and a pinned
// query that arrives after the relation moved fails ErrRelationStale.
type hostedRelation struct {
	client *cloud.Client

	mu     sync.Mutex
	state  *mutate.Relation
	engine *shard.Engine
	er     *EncryptedRelation
	// applied records every landed delta's idempotency key and the epoch
	// its application produced, making Apply exactly-once: a retry of a
	// delta that already landed reports the recorded epoch and changes
	// nothing. (Entries live as long as the hosting; deltas are rare
	// relative to queries, so the table stays small.)
	applied map[string]uint64
}

// snapshot returns the consistent view one query executes against.
func (h *hostedRelation) snapshot() (*shard.Engine, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.engine, h.state.Epoch
}

// apply lands one delta (exactly once) and returns the resulting epoch.
// threshold > 0 folds tombstones in the same transition once the dead
// count reaches it.
func (h *hostedRelation) apply(d *mutate.Delta, threshold int) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d.ID != "" {
		if epoch, done := h.applied[d.ID]; done {
			return epoch, nil
		}
	}
	next, err := h.state.Apply(d)
	if err != nil {
		return 0, err
	}
	if threshold > 0 && next.DeadRows() >= threshold {
		next = next.Compact()
	}
	if err := h.swapLocked(next); err != nil {
		return 0, err
	}
	if d.ID != "" {
		h.applied[d.ID] = next.Epoch
	}
	return next.Epoch, nil
}

// compact folds the relation's tombstones and returns the new epoch.
// Compacting a relation with no dead rows still advances the epoch —
// the caller asked for a transition and gets a fenceable one.
func (h *hostedRelation) compact() (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := h.state.Compact()
	if err := h.swapLocked(next); err != nil {
		return 0, err
	}
	return next.Epoch, nil
}

// swapLocked (h.mu held) rebuilds the query engine over the next
// snapshot's live views and installs it. Building the engine cannot
// disturb in-flight queries: they hold the old engine, whose relations
// the copy-on-write snapshots never touch.
func (h *hostedRelation) swapLocked(next *mutate.Relation) error {
	sh, err := shard.New(next.LiveShards())
	if err != nil {
		return err
	}
	engine, err := shard.NewEngine(h.client, sh)
	if err != nil {
		return err
	}
	h.state = next
	h.engine = engine
	h.er = &EncryptedRelation{sh: sh, pk: h.er.pk, mst: next}
	return nil
}

// hostedJoin is one join-relation pair this data cloud serves joins for.
type hostedJoin struct {
	client *cloud.Client
	engine *join.Engine
	er1    *EncryptedJoinRelation
	er2    *EncryptedJoinRelation
}

// NewDataCloud builds an unconnected data cloud. Options configure the
// S1-side worker pools and nonce paths.
func NewDataCloud(opts ...Option) *DataCloud {
	cfg := buildConfig(opts)
	var admit *admission
	if cfg.sessionLimit > 0 {
		admit = &admission{slots: make(chan struct{}, cfg.sessionLimit), shed: true}
	}
	return &DataCloud{
		cfg:        cfg,
		ledger:     cloud.NewLedger(),
		stats:      transport.NewStats(),
		admit:      admit,
		qos:        qos.NewLimiter(cfg.tenantLimits),
		relations:  map[string]*hostedRelation{},
		joins:      map[string]*hostedJoin{},
		knns:       map[string]*hostedKNN{},
		shardHosts: map[string]*hostedShards{},
	}
}

// setCaller installs the transport exactly once. raw is the transport
// the rounds travel on; the batch scheduler (when enabled) wraps it and
// becomes the caller the hosted clients see.
func (d *DataCloud) setCaller(raw transport.Caller, conn transport.ConnCaller) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return secerr.New(secerr.CodeInternal, "sectopk: data cloud is closed")
	}
	if d.caller != nil {
		return secerr.New(secerr.CodeInternal, "sectopk: data cloud already connected")
	}
	caller := raw
	if d.cfg.retry != nil {
		// Round-retry sits below the batcher: a retried round is the
		// actual wire envelope, re-issued only per the retryability table.
		caller = cloud.NewRetryCaller(caller, d.cfg.retryPolicy())
	}
	if d.cfg.batching {
		d.batcher = cloud.NewBatcher(caller)
		caller = d.batcher
	}
	d.caller = caller
	d.conn = conn
	return nil
}

// unsetCaller uninstalls a transport whose handshake failed, so the data
// cloud can retry connecting instead of being wedged on a dead link. The
// discarded connection is closed first (stopping its reader goroutine
// and unblocking any in-flight envelope), then the batcher drains.
func (d *DataCloud) unsetCaller() {
	d.mu.Lock()
	batcher := d.batcher
	conn := d.conn
	d.caller = nil
	d.conn = nil
	d.batcher = nil
	d.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if batcher != nil {
		batcher.Close()
	}
}

// handshake runs the Hello round over the connected transport via the
// shared cloud-layer implementation.
func (d *DataCloud) handshake(ctx context.Context, relation string) error {
	return cloud.Handshake(ctx, d.caller, relation)
}

// ConnectLocal wires this data cloud to a CryptoCloud in the same
// process (gob-serializing both directions, so byte accounting matches
// the TCP wire exactly) and runs the version handshake.
func (d *DataCloud) ConnectLocal(ctx context.Context, cc *CryptoCloud) error {
	if cc == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: nil crypto cloud")
	}
	caller := transport.NewLocal(cc.responder(), d.stats)
	if err := d.setCaller(caller, nil); err != nil {
		return err
	}
	if err := d.handshake(ctx, ""); err != nil {
		d.unsetCaller()
		return err
	}
	return nil
}

// Connect wires this data cloud to a CryptoCloud over an established
// connection: the frame-ID multiplexed wire v2 framing is negotiated
// (a responder that predates v2 fails the preface exchange with a
// transport error), then the version handshake runs. The connection is
// closed by Close.
func (d *DataCloud) Connect(ctx context.Context, conn net.Conn) error {
	nc, err := transport.Connect(ctx, conn, d.stats)
	if err != nil {
		return err
	}
	if err := d.setCaller(nc, nc); err != nil {
		nc.Close()
		return err
	}
	if err := d.handshake(ctx, ""); err != nil {
		d.unsetCaller()
		return err
	}
	return nil
}

// Dial connects to a CryptoCloud serving at addr (TCP) and runs the
// version handshake.
func (d *DataCloud) Dial(ctx context.Context, addr string) error {
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "sectopk: dialing crypto cloud")
	}
	if err := d.Connect(ctx, conn); err != nil {
		conn.Close()
		return err
	}
	return nil
}

// DialRetry connects to a CryptoCloud at addr through the self-healing
// transport: the link is (re-)dialed on demand under the configured
// retry policy (WithRetry; package defaults otherwise), and every
// reconnect re-runs the version handshake plus one Hello per hosted
// relation before any round travels. A round that was in flight when
// the link died still fails — re-issuing rounds is the round-retry
// layer's job (WithRetry), which composes on top of this transport.
func (d *DataCloud) DialRetry(ctx context.Context, addr string) error {
	rc := transport.NewReconnectCaller(transport.ReconnectConfig{
		Dial: func(ctx context.Context) (transport.ConnCaller, error) {
			var dialer net.Dialer
			conn, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, secerr.Wrap(secerr.CodeTransport, err, "sectopk: dialing crypto cloud")
			}
			nc, err := transport.Connect(ctx, conn, d.stats)
			if err != nil {
				conn.Close()
				return nil, err
			}
			return nc, nil
		},
		OnConnect: func(ctx context.Context, c transport.Caller) error {
			if err := cloud.Handshake(ctx, c, ""); err != nil {
				return err
			}
			// Re-prove every hosted relation on the fresh link, so a
			// crypto cloud that restarted without its registrations is
			// caught at reconnect time, not mid-query.
			for _, id := range d.Hosted() {
				if err := cloud.Handshake(ctx, c, id); err != nil {
					return err
				}
			}
			return nil
		},
		Policy: d.cfg.retryPolicy(),
	})
	// Eager first dial (the version handshake rides OnConnect): fail
	// DialRetry after the policy's attempts rather than the first query
	// when the crypto cloud is unreachable.
	if err := rc.Connect(ctx); err != nil {
		rc.Close()
		return err
	}
	if err := d.setCaller(rc, rc); err != nil {
		rc.Close()
		return err
	}
	return nil
}

// Connected reports whether the data cloud holds a usable transport: it
// is wired up (ConnectLocal, Connect, Dial, or DialRetry), not closed,
// and — on a self-healing transport — the link is currently established
// rather than awaiting a re-dial.
func (d *DataCloud) Connected() bool {
	d.mu.Lock()
	caller := d.caller
	conn := d.conn
	closed := d.closed
	d.mu.Unlock()
	if closed || caller == nil {
		return false
	}
	if rc, ok := conn.(*transport.ReconnectCaller); ok {
		return rc.Connected()
	}
	return true
}

// Draining reports whether the data cloud is in its drain window:
// shutdown has begun, in-flight requests are completing, and new ones
// shed with ErrOverloaded. Readiness probes should report not-ready.
func (d *DataCloud) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// beginExecute brackets one request into the drain accounting; callers
// must call endExecute iff it returned nil.
func (d *DataCloud) beginExecute() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return secerr.New(secerr.CodeInternal, "sectopk: data cloud is closed")
	}
	if d.draining {
		return secerr.New(secerr.CodeOverloaded, "sectopk: data cloud is draining, request shed")
	}
	d.inflight++
	return nil
}

func (d *DataCloud) endExecute() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inflight--
	if d.inflight == 0 && d.drainDone != nil {
		close(d.drainDone)
		d.drainDone = nil
	}
}

// connectedCaller returns the transport or a typed error.
func (d *DataCloud) connectedCaller() (transport.Caller, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, secerr.New(secerr.CodeInternal, "sectopk: data cloud is closed")
	}
	if d.caller == nil {
		return nil, secerr.New(secerr.CodeInternal, "sectopk: data cloud is not connected")
	}
	return d.caller, nil
}

// Host registers an encrypted relation under id: it confirms (via a
// Hello round) that the connected crypto cloud serves the relation, then
// builds the S1 query engine for it. Hosting an ID twice fails with
// ErrRelationExists; an unregistered relation fails with
// ErrUnknownRelation.
func (d *DataCloud) Host(ctx context.Context, id string, er *EncryptedRelation) error {
	if id == "" || er == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: missing relation id or relation")
	}
	caller, err := d.connectedCaller()
	if err != nil {
		return err
	}
	d.mu.Lock()
	_, taken := d.relations[id]
	_, takenJoin := d.joins[id]
	d.mu.Unlock()
	if taken || takenJoin {
		return secerr.New(secerr.CodeRelationExists, "sectopk: relation %q already hosted", id)
	}
	client, err := cloud.NewClient(caller, er.pk, d.ledger, append(d.cfg.cloudOptions(), cloud.WithRelation(id))...)
	if err != nil {
		return err
	}
	if err := client.Handshake(ctx); err != nil {
		client.Close()
		return err
	}
	engine, err := shard.NewEngine(client, er.sh)
	if err != nil {
		client.Close()
		return err
	}
	// Materialize the mutable state the mutation plane versions: either
	// the epoch-stamped state the relation was loaded with, or a fresh
	// epoch-1 wrapping of the shards.
	state := er.mst
	if state == nil {
		state, err = mutate.New(er.sh.Shards, 0)
		if err != nil {
			client.Close()
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.hostableLocked(id); err != nil {
		client.Close()
		return err
	}
	d.relations[id] = &hostedRelation{
		client: client, state: state, engine: engine, er: er,
		applied: map[string]uint64{},
	}
	return nil
}

// Apply lands one owner-produced mutation delta on a hosted top-k
// relation and returns the resulting epoch (BaseEpoch+1, or one more
// when WithCompactThreshold folded tombstones in the same transition —
// the owner's Adopt handles both). Application is atomic and
// exactly-once: a delta that fails validation (or targets a stale
// epoch, ErrRelationStale) changes nothing, and a retry of a delta that
// already landed — same idempotency key — reports the recorded epoch
// without reapplying. Queries already executing finish on their own
// pre-Apply snapshot; Apply never makes a query wrong, only (when
// pinned with WithEpoch) stale.
//
// Join and kNN relations are encrypt-once (their ids are positional);
// Apply on one fails typed, naming the hosted kind.
func (d *DataCloud) Apply(ctx context.Context, relation string, delta *Delta) (uint64, error) {
	if delta == nil {
		return 0, secerr.New(secerr.CodeBadRequest, "sectopk: nil delta")
	}
	return d.applyDelta(ctx, relation, delta.d)
}

// applyDelta is the internal Apply entry point (shared with the client
// wire, which decodes straight to the internal delta type).
func (d *DataCloud) applyDelta(ctx context.Context, relation string, delta *mutate.Delta) (uint64, error) {
	// Application is local to S1 (no protocol rounds), so cancellation
	// only gates entry: once started, a delta lands atomically.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := d.clusterMutable(relation); err != nil {
		return 0, err
	}
	if err := d.beginExecute(); err != nil {
		return 0, err
	}
	defer d.endExecute()
	rel, err := d.hostedTopK(relation)
	if err != nil {
		return 0, err
	}
	ins, del := delta.Rows()
	epoch, err := rel.apply(delta, d.cfg.compactGoal)
	if err != nil {
		return 0, err
	}
	// What S1 observably learns from a delta: which shards moved, how
	// many rows appeared/disappeared, and at which list positions — but
	// never which object a ciphertext encodes. See DESIGN.md "Mutation
	// protocol" for the leakage accounting.
	d.ledger.Record("S1", "Apply", "relation %s: +%d/-%d rows across %d shards -> epoch %d",
		relation, ins, del, len(delta.Shards), epoch)
	return epoch, nil
}

// Compact folds a hosted relation's tombstones away and returns the new
// epoch. The live view is unchanged — queries keep answering
// identically — but positions shift meaning, so the epoch advances and
// in-flight deltas against the old epoch fail ErrRelationStale.
func (d *DataCloud) Compact(ctx context.Context, relation string) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := d.clusterMutable(relation); err != nil {
		return 0, err
	}
	if err := d.beginExecute(); err != nil {
		return 0, err
	}
	defer d.endExecute()
	rel, err := d.hostedTopK(relation)
	if err != nil {
		return 0, err
	}
	epoch, err := rel.compact()
	if err != nil {
		return 0, err
	}
	d.ledger.Record("S1", "Compact", "relation %s compacted -> epoch %d", relation, epoch)
	return epoch, nil
}

// Epoch reports the current epoch of a hosted top-k relation (for a
// cluster-hosted relation, the epoch the placement is pinned to).
func (d *DataCloud) Epoch(relation string) (uint64, error) {
	if cl := d.clusterView(); cl != nil {
		if cc := cl.coords[relation]; cc != nil {
			return cc.coord.Epoch(), nil
		}
	}
	rel, err := d.hostedTopK(relation)
	if err != nil {
		return 0, err
	}
	_, epoch := rel.snapshot()
	return epoch, nil
}

// hostableLocked re-checks (under d.mu) that the data cloud is still
// open and the ID is free in EVERY workload registry — concurrent Host,
// HostJoin, and HostKNN calls for the same ID must not all succeed.
func (d *DataCloud) hostableLocked(id string) error {
	if d.closed {
		return secerr.New(secerr.CodeInternal, "sectopk: data cloud is closed")
	}
	if d.relations[id] != nil || d.joins[id] != nil || d.knns[id] != nil || d.shardHosts[id] != nil {
		return secerr.New(secerr.CodeRelationExists, "sectopk: relation %q already hosted", id)
	}
	if cl := d.cluster; cl != nil && (cl.coords[id] != nil || cl.routes[id] != nil) {
		return secerr.New(secerr.CodeRelationExists, "sectopk: relation %q already cluster-hosted", id)
	}
	return nil
}

// HostJoin registers a pair of join relations under id (the ID names the
// shared key material registered on the crypto cloud). Both relations
// must come from the same JoinOwner.
func (d *DataCloud) HostJoin(ctx context.Context, id string, er1, er2 *EncryptedJoinRelation) error {
	if id == "" || er1 == nil || er2 == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: missing relation id or join relations")
	}
	if er1.pk.N.Cmp(er2.pk.N) != 0 {
		return secerr.New(secerr.CodeBadRequest, "sectopk: join relations encrypted under different keys")
	}
	caller, err := d.connectedCaller()
	if err != nil {
		return err
	}
	d.mu.Lock()
	_, taken := d.relations[id]
	_, takenJoin := d.joins[id]
	d.mu.Unlock()
	if taken || takenJoin {
		return secerr.New(secerr.CodeRelationExists, "sectopk: relation %q already hosted", id)
	}
	client, err := cloud.NewClient(caller, er1.pk, d.ledger, append(d.cfg.cloudOptions(), cloud.WithRelation(id))...)
	if err != nil {
		return err
	}
	if err := client.Handshake(ctx); err != nil {
		client.Close()
		return err
	}
	engine, err := join.NewEngine(client, er1.er, er2.er, er1.maxScoreBits)
	if err != nil {
		client.Close()
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.hostableLocked(id); err != nil {
		client.Close()
		return err
	}
	d.joins[id] = &hostedJoin{client: client, engine: engine, er1: er1, er2: er2}
	return nil
}

// Hosted lists the hosted relation IDs (top-k, join, kNN, cluster-member
// shard subsets, and front-door cluster relations), unsorted.
func (d *DataCloud) Hosted() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.relations)+len(d.joins)+len(d.knns)+len(d.shardHosts))
	for id := range d.relations {
		out = append(out, id)
	}
	for id := range d.joins {
		out = append(out, id)
	}
	for id := range d.knns {
		out = append(out, id)
	}
	for id := range d.shardHosts {
		out = append(out, id)
	}
	if d.cluster != nil {
		for id := range d.cluster.coords {
			out = append(out, id)
		}
		for id := range d.cluster.routes {
			out = append(out, id)
		}
	}
	return out
}

// Traffic returns the cumulative wire usage over this data cloud's
// connection.
func (d *DataCloud) Traffic() Traffic {
	return Traffic{Rounds: d.stats.Rounds(), Bytes: d.stats.Bytes()}
}

// s2Calls reads the cumulative count of protocol calls shipped to the
// crypto cloud: the batch scheduler's item counter when batching is on,
// else the raw round counter (one call per round then). Executions
// measure deltas of it for their span accounting.
func (d *DataCloud) s2Calls() int64 {
	d.mu.Lock()
	b := d.batcher
	d.mu.Unlock()
	if b != nil {
		return b.Items()
	}
	return d.stats.Rounds()
}

// LeakageEvents returns everything this cloud could observe beyond the
// declared ciphertexts (query pattern, halting depth, uniqueness
// patterns) as human-readable strings.
func (d *DataCloud) LeakageEvents() []string {
	events := d.ledger.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.String()
	}
	return out
}

// Close releases every hosted relation's background pools and closes the
// network connection, if any. With WithDrainTimeout it is graceful:
// admission stops immediately (new requests shed with ErrOverloaded),
// requests already executing get up to the drain window to finish, and
// only then is the transport torn down — so a drained shutdown never
// turns a completing query into a transport error. Safe to call more
// than once.
func (d *DataCloud) Close() {
	d.mu.Lock()
	if !d.closed {
		d.draining = true
		if d.cfg.drainTimeout > 0 && d.inflight > 0 {
			done := make(chan struct{})
			d.drainDone = done
			d.mu.Unlock()
			timer := time.NewTimer(d.cfg.drainTimeout)
			select {
			case <-done:
			case <-timer.C:
			}
			timer.Stop()
			d.mu.Lock()
			d.drainDone = nil
		}
	}
	rels := d.relations
	joins := d.joins
	knns := d.knns
	shardHosts := d.shardHosts
	clu := d.cluster
	conn := d.conn
	batcher := d.batcher
	d.relations = map[string]*hostedRelation{}
	d.joins = map[string]*hostedJoin{}
	d.knns = map[string]*hostedKNN{}
	d.shardHosts = map[string]*hostedShards{}
	d.cluster = nil
	d.caller = nil
	d.conn = nil
	d.batcher = nil
	d.closed = true
	d.mu.Unlock()
	for _, r := range rels {
		r.client.Close()
	}
	for _, j := range joins {
		j.client.Close()
	}
	for _, k := range knns {
		k.client.Close()
	}
	for _, hs := range shardHosts {
		hs.client.Close()
	}
	if clu != nil {
		clu.close()
	}
	// Close the connection before draining the batcher: in-flight
	// envelopes run under the background context, so the dying link is
	// what unblocks them — the reverse order would wait on a stalled
	// peer forever.
	if conn != nil {
		conn.Close()
	}
	if batcher != nil {
		batcher.Close()
	}
}

// Session is one top-k query's lifecycle: built from a token, executed
// against the crypto cloud, yielding an encrypted result the client
// reveals with the owner's keys. It is a thin wrapper over
// DataCloud.Execute that adds eager validation and result retention.
type Session struct {
	dc       *DataCloud
	relation string
	tk       *Token
	cfg      queryConfig

	mu      sync.Mutex
	res     *EncryptedResult
	traffic Traffic
}

// NewSession validates the token against the hosted relation and
// prepares a query session. Unknown relation IDs fail with
// ErrUnknownRelation; invalid tokens with ErrInvalidToken.
func (d *DataCloud) NewSession(relation string, tk *Token, opts ...QueryOption) (*Session, error) {
	if tk == nil {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: nil token")
	}
	if cl := d.clusterView(); cl != nil {
		if cc := cl.coords[relation]; cc != nil {
			if err := cc.coord.ValidateToken(tk.tk); err != nil {
				return nil, err
			}
			return &Session{dc: d, relation: relation, tk: tk, cfg: buildQueryConfig(opts)}, nil
		}
	}
	rel, err := d.hostedTopK(relation)
	if err != nil {
		return nil, err
	}
	engine, _ := rel.snapshot()
	if err := engine.ValidateToken(tk.tk); err != nil {
		return nil, err
	}
	return &Session{dc: d, relation: relation, tk: tk, cfg: buildQueryConfig(opts)}, nil
}

// Execute runs the query (SecQuery, Algorithm 3). Cancellation via ctx
// is cooperative and bounded by one protocol round. The result is also
// retained on the session (Result).
func (s *Session) Execute(ctx context.Context) (*EncryptedResult, error) {
	ans, err := s.dc.execute(ctx, Request{Relation: s.relation, TopK: s.tk}, s.cfg, s.dc.admit)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.res = ans.TopK
	s.traffic = ans.Traffic
	s.mu.Unlock()
	return ans.TopK, nil
}

// Result returns the last Execute outcome (nil before the first).
func (s *Session) Result() *EncryptedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}

// Traffic returns the rounds/bytes of the last Execute. With concurrent
// sessions on one connection the numbers are approximate (the link is
// shared).
func (s *Session) Traffic() Traffic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traffic
}

// JoinSession is one top-k equi-join's lifecycle — a thin wrapper over
// DataCloud.Execute.
type JoinSession struct {
	dc       *DataCloud
	relation string
	tk       *JoinToken
	cfg      queryConfig

	mu      sync.Mutex
	res     *EncryptedJoinResult
	traffic Traffic
}

// NewJoinSession prepares a join session over a hosted join pair.
func (d *DataCloud) NewJoinSession(relation string, tk *JoinToken, opts ...QueryOption) (*JoinSession, error) {
	if tk == nil {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: nil join token")
	}
	if _, err := d.hostedJoinRelation(relation); err != nil {
		return nil, err
	}
	return &JoinSession{dc: d, relation: relation, tk: tk, cfg: buildQueryConfig(opts)}, nil
}

// Execute runs the oblivious nested-loop equi-join (SecJoin, Algorithm
// 11) followed by SecFilter and top-k selection.
func (s *JoinSession) Execute(ctx context.Context) (*EncryptedJoinResult, error) {
	ans, err := s.dc.execute(ctx, Request{Relation: s.relation, Join: s.tk}, s.cfg, s.dc.admit)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.res = ans.Join
	s.traffic = ans.Traffic
	s.mu.Unlock()
	return ans.Join, nil
}

// Result returns the last Execute outcome (nil before the first).
func (s *JoinSession) Result() *EncryptedJoinResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}

// Traffic returns the rounds/bytes of the last Execute.
func (s *JoinSession) Traffic() Traffic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traffic
}

// SessionPool executes requests over one hosted relation with bounded
// concurrency: each Execute claims a slot, runs through the unified
// DataCloud.Execute path, and releases the slot. Admission is uniform
// across workloads — a pool over a join or kNN relation bounds those
// queries exactly like a top-k pool does. On a multiplexed connection
// the concurrent requests' protocol rounds genuinely overlap (and the
// batch scheduler coalesces them into shared envelopes), which is what
// turns S2's idle cores into throughput. Safe for concurrent use from
// any number of goroutines.
type SessionPool struct {
	dc       *DataCloud
	relation string
	sem      chan struct{}
}

// NewSessionPool prepares a pool over a hosted relation of any workload
// (top-k, join, or kNN). maxConcurrent bounds the simultaneously
// executing requests (<= 0 picks GOMAXPROCS). Unknown relations fail
// with ErrUnknownRelation.
func (d *DataCloud) NewSessionPool(relation string, maxConcurrent int) (*SessionPool, error) {
	d.mu.Lock()
	ok := d.relations[relation] != nil || d.joins[relation] != nil || d.knns[relation] != nil
	if cl := d.cluster; !ok && cl != nil {
		ok = cl.coords[relation] != nil || cl.routes[relation] != nil
	}
	d.mu.Unlock()
	if !ok {
		return nil, secerr.New(secerr.CodeUnknownRelation, "sectopk: relation %q not hosted", relation)
	}
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	return &SessionPool{dc: d, relation: relation, sem: make(chan struct{}, maxConcurrent)}, nil
}

// ExecuteRequest runs one request of any workload through the pool: it
// blocks for a slot (or the context), then executes via the unified
// entry point. The request's Relation must be empty (the pool's
// relation fills in) or equal to the pool's relation.
func (p *SessionPool) ExecuteRequest(ctx context.Context, req Request) (*Answer, error) {
	if req.Relation == "" {
		req.Relation = p.relation
	} else if req.Relation != p.relation {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: session pool serves relation %q, request names %q", p.relation, req.Relation)
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("sectopk: session pool: %w", ctx.Err())
	}
	defer func() { <-p.sem }()
	return p.dc.Execute(ctx, req)
}

// Execute runs one top-k query through the pool.
func (p *SessionPool) Execute(ctx context.Context, tk *Token, opts ...QueryOption) (*EncryptedResult, error) {
	ans, err := p.ExecuteRequest(ctx, TopKRequest("", tk, opts...))
	if err != nil {
		return nil, err
	}
	return ans.TopK, nil
}

// ExecuteJoin runs one top-k equi-join through the pool.
func (p *SessionPool) ExecuteJoin(ctx context.Context, tk *JoinToken, opts ...QueryOption) (*EncryptedJoinResult, error) {
	ans, err := p.ExecuteRequest(ctx, JoinRequest("", tk, opts...))
	if err != nil {
		return nil, err
	}
	return ans.Join, nil
}

// ExecuteKNN runs one k-nearest-neighbors query through the pool.
func (p *SessionPool) ExecuteKNN(ctx context.Context, tk *KNNToken, opts ...QueryOption) (*EncryptedKNNResult, error) {
	ans, err := p.ExecuteRequest(ctx, KNNRequest("", tk, opts...))
	if err != nil {
		return nil, err
	}
	return ans.KNN, nil
}
