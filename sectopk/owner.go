package sectopk

import (
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/knn"
	"repro/internal/prf"
	"repro/internal/secerr"
	"repro/internal/shard"
)

// Keys is the secret key material an owner provisions to the crypto
// cloud. It is opaque: whoever holds it can decrypt the owner's data, so
// it must only travel owner → S2.
type Keys struct {
	km *cloud.KeyMaterial
}

// Owner is the data owner role of SecTopK: it generates keys, encrypts
// relations (Enc, Algorithm 2) — optionally partitioned into shards for
// concurrent query execution (WithShards) — issues query tokens
// (Section 7), and, standing in for authorized clients, reveals
// encrypted results.
type Owner struct {
	scheme *core.Scheme
	shards int
	// knnMaster keys the kNN id-digest table. It is derived
	// deterministically from the owner's persisted scheme secrets
	// (domain-separated), so a restored owner — including one restored
	// from a bundle written before the kNN workload existed — always
	// reveals kNN answers over record stores the original encrypted.
	knnMaster prf.Key

	mu           sync.Mutex
	revealers    map[int]*core.Revealer
	knn          *knn.Scheme // lazily built on first kNN use
	knnRevealers map[int]*knn.Revealer
}

// NewOwner generates an owner with fresh key material.
func NewOwner(opts ...Option) (*Owner, error) {
	cfg := buildConfig(opts)
	scheme, err := core.NewScheme(cfg.coreParams())
	if err != nil {
		return nil, err
	}
	return newOwner(scheme, cfg.shards), nil
}

// newOwner assembles an owner around a (fresh or restored) scheme.
func newOwner(scheme *core.Scheme, shards int) *Owner {
	knnMaster := prf.Key(prf.Eval(prf.Key(scheme.Secrets().Master),
		[]byte("sectopk/knn-digest-master/v1")))
	return &Owner{
		scheme: scheme, shards: shards, knnMaster: knnMaster,
		revealers:    map[int]*core.Revealer{},
		knnRevealers: map[int]*knn.Revealer{},
	}
}

// knnScheme returns the (lazily built) kNN owner scheme, which shares the
// owner's Paillier keys but hashes record ids under the dedicated kNN
// master key.
func (o *Owner) knnScheme() (*knn.Scheme, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.knn != nil {
		return o.knn, nil
	}
	p := o.scheme.Params()
	s, err := knn.NewSchemeWithMaster(o.scheme.KeyMaterial(), o.knnMaster, p.EHL, p.MaxScoreBits)
	if err != nil {
		return nil, err
	}
	o.knn = s
	return s, nil
}

// knnRevealer returns the (cached) kNN digest resolver for record stores
// of n rows.
func (o *Owner) knnRevealer(n int) (*knn.Revealer, error) {
	s, err := o.knnScheme()
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if r, ok := o.knnRevealers[n]; ok {
		return r, nil
	}
	r, err := s.NewRevealer(n)
	if err != nil {
		return nil, err
	}
	o.knnRevealers[n] = r
	return r, nil
}

// Keys returns the secret key material to provision to a CryptoCloud.
func (o *Owner) Keys() *Keys { return &Keys{km: o.scheme.KeyMaterial()} }

// Encrypt outsources a relation: each attribute list is sorted, ids are
// EHL-encrypted, scores Paillier-encrypted, and list positions permuted.
// With WithShards(p), the rows are first partitioned round-robin into p
// shards, each encrypted as a complete relation under globally unique
// ids, so the data cloud can run one query's shards concurrently. The
// returned EncryptedRelation carries only public material.
func (o *Owner) Encrypt(rel *Relation) (*EncryptedRelation, error) {
	d, err := rel.toDataset()
	if err != nil {
		return nil, err
	}
	p := o.shards
	if p > len(d.Rows) {
		p = len(d.Rows)
	}
	if p <= 1 {
		er, err := o.scheme.EncryptRelation(d)
		if err != nil {
			return nil, err
		}
		sh, err := shard.New([]*core.EncryptedRelation{er})
		if err != nil {
			return nil, err
		}
		return &EncryptedRelation{sh: sh, pk: o.scheme.PublicKey()}, nil
	}
	sh, err := shard.Encrypt(o.scheme, d, p)
	if err != nil {
		return nil, err
	}
	return &EncryptedRelation{sh: sh, pk: o.scheme.PublicKey()}, nil
}

// Token issues the trapdoor for one query over an encrypted relation.
// One token is valid for every shard of the relation; k is validated
// against the global row count. Invalid queries fail with
// ErrInvalidToken.
func (o *Owner) Token(er *EncryptedRelation, q Query) (*Token, error) {
	if er == nil {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: nil encrypted relation")
	}
	tk, err := o.scheme.TokenFor(er.sh.N, er.sh.M, q.Attrs, q.Weights, q.K)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: token")
	}
	return &Token{tk: tk}, nil
}

// revealer returns the (cached) digest resolver for relations of n rows.
func (o *Owner) revealer(n int) (*core.Revealer, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if r, ok := o.revealers[n]; ok {
		return r, nil
	}
	r, err := o.scheme.NewRevealer(n)
	if err != nil {
		return nil, err
	}
	o.revealers[n] = r
	return r, nil
}

// Reveal decrypts an encrypted query result into (object, score) pairs,
// ranked best-first. Only the owner (or a client provisioned with the
// owner's keys) can reveal.
func (o *Owner) Reveal(er *EncryptedRelation, res *EncryptedResult) ([]Result, error) {
	if er == nil || res == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: nil relation or result")
	}
	// Size the digest table by the id space, not the live row count: a
	// mutated relation's live ids are sparse in [0, idSpace), and the
	// extra digests for dead ids are harmless (they can never appear in a
	// result — tombstones are structurally outside the query's view).
	rev, err := o.revealer(er.idSpace())
	if err != nil {
		return nil, err
	}
	revealed, err := rev.RevealTopK(res.items)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(revealed))
	for i, r := range revealed {
		out[i] = Result{Object: r.Obj, Score: r.Worst}
	}
	return out, nil
}

// JoinOwner is the data owner for the multi-relation join setting
// (Section 12): relations it encrypts share key material, so the clouds
// can evaluate equi-join conditions across them.
type JoinOwner struct {
	scheme *join.Scheme
}

// NewJoinOwner generates a join owner with fresh key material.
func NewJoinOwner(opts ...Option) (*JoinOwner, error) {
	cfg := buildConfig(opts)
	p := cfg.coreParams()
	scheme, err := join.NewScheme(join.Params{KeyBits: p.KeyBits, EHL: p.EHL, MaxScoreBits: p.MaxScoreBits})
	if err != nil {
		return nil, err
	}
	return &JoinOwner{scheme: scheme}, nil
}

// Keys returns the secret key material to provision to a CryptoCloud.
// All of this owner's join relations share it, so one registration
// serves every join over them.
func (o *JoinOwner) Keys() *Keys { return &Keys{km: o.scheme.KeyMaterial()} }

// Encrypt outsources a join relation (the per-relation half of
// Algorithm 10).
func (o *JoinOwner) Encrypt(rel *Relation) (*EncryptedJoinRelation, error) {
	d, err := rel.toDataset()
	if err != nil {
		return nil, err
	}
	er, err := o.scheme.EncryptRelation(d)
	if err != nil {
		return nil, err
	}
	p := o.scheme.Params()
	return &EncryptedJoinRelation{er: er, pk: o.scheme.PublicKey(), ehlS: p.EHL.S, maxScoreBits: p.MaxScoreBits}, nil
}

// Token issues the trapdoor for one top-k equi-join over two of this
// owner's encrypted relations.
func (o *JoinOwner) Token(er1, er2 *EncryptedJoinRelation, q JoinQuery) (*JoinToken, error) {
	if er1 == nil || er2 == nil {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: nil encrypted join relation")
	}
	tk, err := o.scheme.NewToken(er1.er, er2.er, q.JoinAttr1, q.JoinAttr2, q.ScoreAttr1, q.ScoreAttr2, q.Project1, q.Project2, q.K)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: join token")
	}
	return &JoinToken{tk: tk}, nil
}

// Reveal decrypts an encrypted join result into scored tuples.
func (o *JoinOwner) Reveal(res *EncryptedJoinResult) ([]JoinResult, error) {
	if res == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: nil join result")
	}
	revealed, err := o.scheme.Reveal(res.tuples)
	if err != nil {
		return nil, err
	}
	out := make([]JoinResult, len(revealed))
	for i, t := range revealed {
		out[i] = JoinResult{Score: t.Score, Attrs: t.Attrs}
	}
	return out, nil
}
