package sectopk_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/secerr"
	"repro/sectopk"
)

// The chaos suite drives real queries through fault-injected transports
// (internal/faultnet) and checks the failure-model invariant end to end:
// every query either completes with the correct revealed answer or fails
// fast with a typed secerr code — no hangs, no goroutine leaks, no wrong
// results. Schedules are seed-derived, so a failure reproduces from the
// seed printed with it; the CI chaos job pins a seed matrix via
// SECTOPK_CHAOS_SEEDS (comma-separated int64s).

// chaosSeeds returns the seed matrix: SECTOPK_CHAOS_SEEDS when set, else
// a small default that keeps `go test` fast.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("SECTOPK_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("SECTOPK_CHAOS_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// chaosRig is a single-relation owner/S2/S1 stack plus a pinned query
// and its plaintext answer, kept small so each seed's run is cheap.
type chaosRig struct {
	owner *sectopk.Owner
	cc    *sectopk.CryptoCloud
	er    *sectopk.EncryptedRelation
	tk    *sectopk.Token
	want  []sectopk.Result
}

func newChaosRig(t *testing.T, opts ...sectopk.Option) *chaosRig {
	t.Helper()
	owner, err := sectopk.NewOwner(testOpts(opts...)...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	cc := sectopk.NewCryptoCloud(testOpts(opts...)...)
	t.Cleanup(cc.Close)
	if err := cc.Register("topk", owner.Keys()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	return &chaosRig{
		owner: owner, cc: cc, er: er, tk: tk,
		want: []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}},
	}
}

// newDataCloud builds a data cloud wired for this rig's relation.
func (r *chaosRig) newDataCloud(t *testing.T, connect func(dc *sectopk.DataCloud) error, opts ...sectopk.Option) *sectopk.DataCloud {
	t.Helper()
	dc := sectopk.NewDataCloud(testOpts(opts...)...)
	if err := connect(dc); err != nil {
		dc.Close()
		t.Fatalf("connecting data cloud: %v", err)
	}
	if err := dc.Host(context.Background(), "topk", r.er); err != nil {
		dc.Close()
		t.Fatalf("Host: %v", err)
	}
	return dc
}

// checkAnswer enforces the chaos invariant on one finished query: a nil
// error must reveal to the pinned answer; a failure must carry a typed
// secerr code (never an untyped/internal one, never a deadline blown
// while blocked — that would be a hang dressed up as an error).
func (r *chaosRig) checkAnswer(t *testing.T, res *sectopk.EncryptedResult, err error, sched *faultnet.Schedule) (completed bool) {
	t.Helper()
	if err == nil {
		got, rerr := r.owner.Reveal(r.er, res)
		if rerr != nil {
			t.Fatalf("Reveal: %v\ninjected: %s", rerr, strings.Join(sched.Injected(), "; "))
		}
		if !reflect.DeepEqual(got, r.want) {
			t.Fatalf("revealed %v, want %v\ninjected: %s", got, r.want, strings.Join(sched.Injected(), "; "))
		}
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query hung until its deadline: %v\ninjected: %s", err, strings.Join(sched.Injected(), "; "))
	}
	if code := secerr.CodeOf(err); code == secerr.CodeInternal {
		t.Fatalf("query failed untyped: %v\ninjected: %s", err, strings.Join(sched.Injected(), "; "))
	}
	return false
}

// chaosProfile is the convergent fault mix: resets and short delays, no
// stalls (an undeadlined stall models a black hole; the bounded-stall
// behavior is proven in faultnet's own tests), with a tail of fault-free
// operations so persistently retried runs terminate.
func chaosProfile() faultnet.Profile {
	return faultnet.Profile{
		Ops:         60,
		Rate:        0.1,
		Kinds:       []faultnet.Kind{faultnet.KindReset, faultnet.KindDelay},
		Delay:       2 * time.Millisecond,
		PersistRate: 0.2,
	}
}

// TestChaosS1S2Link injects faults into the S1↔S2 TCP connection (under
// the multiplexed framing, no recovery layers) and checks every query
// either completes correctly or fails fast typed, with nothing leaked.
func TestChaosS1S2Link(t *testing.T) {
	rig := newChaosRig(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- rig.cc.Serve(serveCtx, l) }()
	t.Cleanup(func() {
		stopServe()
		select {
		case <-serveDone:
		case <-time.After(10 * time.Second):
			t.Error("crypto cloud Serve did not stop")
		}
	})

	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			sched := faultnet.Seeded(seed, chaosProfile())
			raw, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			connectCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			dc := sectopk.NewDataCloud(testOpts()...)
			err = dc.Connect(connectCtx, faultnet.WrapConn(raw, sched))
			cancel()
			if err == nil {
				err = dc.Host(context.Background(), "topk", rig.er)
			}
			if err != nil {
				// Connect/Host hit an injected fault: must be typed, and
				// nothing may linger.
				if code := secerr.CodeOf(err); code == secerr.CodeInternal {
					t.Fatalf("setup failed untyped: %v\ninjected: %s", err, strings.Join(sched.Injected(), "; "))
				}
				raw.Close()
				dc.Close()
				waitForGoroutines(t, baseline)
				return
			}

			completed := 0
			for q := 0; q < 3; q++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				ans, err := dc.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
				cancel()
				var res *sectopk.EncryptedResult
				if ans != nil {
					res = ans.TopK
				}
				if rig.checkAnswer(t, res, err, sched) {
					completed++
				}
			}
			t.Logf("seed %d: %d/3 queries completed; injected: %s",
				seed, completed, strings.Join(sched.Injected(), "; "))
			dc.Close()
			waitForGoroutines(t, baseline)
		})
	}
}

// serveClientsOn starts the client plane on the given listener and
// returns a stop function (idempotent, waits for the serving loop).
func serveClientsOn(t *testing.T, dc *sectopk.DataCloud, l net.Listener) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- dc.ServeClients(ctx, l) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("ServeClients did not return after context cancellation")
		}
	}
	t.Cleanup(stop)
	return stop
}

// TestChaosClientWireWithRetries injects faults into every accepted
// client-plane connection and requires the recovery stack (DialRetry's
// re-dialing transport + Execute retries) to absorb ALL of them: every
// query must complete with the correct answer.
func TestChaosClientWireWithRetries(t *testing.T) {
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	})
	t.Cleanup(dc.Close)

	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			var mu sync.Mutex
			var scheds []*faultnet.Schedule
			injected := func() string {
				mu.Lock()
				defer mu.Unlock()
				var all []string
				for i, s := range scheds {
					for _, f := range s.Injected() {
						all = append(all, "conn"+strconv.Itoa(i)+": "+f)
					}
				}
				return strings.Join(all, "; ")
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := &faultnet.Listener{Listener: l, NewSchedule: func(i int) *faultnet.Schedule {
				// Distinct per-connection streams derived from the seed, so
				// a re-dial after a reset faces fresh (deterministic) faults.
				s := faultnet.Seeded(seed+int64(i)*1021, chaosProfile())
				mu.Lock()
				scheds = append(scheds, s)
				mu.Unlock()
				return s
			}}
			stop := serveClientsOn(t, dc, fl)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			client, err := sectopk.DialRetry(ctx, l.Addr().String(), sectopk.WithRetry(sectopk.RetryPolicy{
				Initial: 2 * time.Millisecond, Max: 50 * time.Millisecond, MaxElapsed: 90 * time.Second,
			}))
			if err != nil {
				t.Fatalf("DialRetry: %v\ninjected: %s", err, injected())
			}
			for q := 0; q < 4; q++ {
				ans, err := client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
				if err != nil {
					t.Fatalf("query %d failed despite retries: %v\ninjected: %s", q, err, injected())
				}
				got, err := rig.owner.Reveal(rig.er, ans.TopK)
				if err != nil {
					t.Fatalf("Reveal: %v", err)
				}
				if !reflect.DeepEqual(got, rig.want) {
					t.Fatalf("query %d revealed %v, want %v\ninjected: %s", q, got, rig.want, injected())
				}
			}
			t.Logf("seed %d: 4/4 queries completed; injected: %s", seed, injected())
			client.Close()
			stop()
			waitForGoroutines(t, baseline)
		})
	}
}

// TestChaosClientWireWithoutRetries runs the same faulty client plane
// with a plain (non-retrying) client: queries may fail, but only fast
// and typed — and a fresh dial after a failure must restore service.
func TestChaosClientWireWithoutRetries(t *testing.T) {
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	})
	t.Cleanup(dc.Close)

	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			var mu sync.Mutex
			var scheds []*faultnet.Schedule
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := &faultnet.Listener{Listener: l, NewSchedule: func(i int) *faultnet.Schedule {
				s := faultnet.Seeded(seed+int64(i)*1021, chaosProfile())
				mu.Lock()
				scheds = append(scheds, s)
				mu.Unlock()
				return s
			}}
			stop := serveClientsOn(t, dc, fl)

			// dial tolerates typed failures (the preface itself may be hit)
			// but never untyped ones or hangs.
			dial := func() *sectopk.Client {
				for attempt := 0; attempt < 20; attempt++ {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					client, err := sectopk.Dial(ctx, l.Addr().String())
					cancel()
					if err == nil {
						return client
					}
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("Dial hung: %v", err)
					}
					if code := secerr.CodeOf(err); code == secerr.CodeInternal {
						t.Fatalf("Dial failed untyped: %v", err)
					}
				}
				t.Fatal("no dial attempt survived the fault schedule")
				return nil
			}

			client := dial()
			completed, failed := 0, 0
			for q := 0; q < 5; q++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				ans, err := client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
				cancel()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("query %d hung: %v", q, err)
					}
					if code := secerr.CodeOf(err); code == secerr.CodeInternal {
						t.Fatalf("query %d failed untyped: %v", q, err)
					}
					failed++
					// The connection may be dead now; service must come
					// back on a fresh one.
					client.Close()
					client = dial()
					continue
				}
				got, err := rig.owner.Reveal(rig.er, ans.TopK)
				if err != nil {
					t.Fatalf("Reveal: %v", err)
				}
				if !reflect.DeepEqual(got, rig.want) {
					t.Fatalf("query %d revealed %v, want %v", q, got, rig.want)
				}
				completed++
			}
			t.Logf("seed %d: %d completed, %d failed typed", seed, completed, failed)
			client.Close()
			stop()
			waitForGoroutines(t, baseline)
		})
	}
}

// TestChaosCancellationMidRetry cancels contexts while the recovery
// stack is mid-backoff: both the dialing phase and the Execute retry
// loop must surface context.Canceled promptly and leak nothing.
func TestChaosCancellationMidRetry(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Reserve an address nothing listens on: every dial attempt fails
	// fast with a typed transport error, so DialRetry sits in backoff.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sectopk.DialRetry(ctx, deadAddr, sectopk.WithRetry(sectopk.RetryPolicy{
		Initial: 500 * time.Millisecond, Max: time.Second, MaxElapsed: 10 * time.Minute,
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DialRetry after cancel: err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("DialRetry took %v to notice cancellation", took)
	}
	waitForGoroutines(t, baseline)

	// Execute phase: connect to a live server, then take it away so
	// Execute's retry loop is re-dialing when the cancel lands.
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	})
	t.Cleanup(dc.Close)
	baseline = runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := serveClientsOn(t, dc, l)
	client, err := sectopk.DialRetry(context.Background(), l.Addr().String(), sectopk.WithRetry(sectopk.RetryPolicy{
		Initial: 200 * time.Millisecond, Max: time.Second, MaxElapsed: 10 * time.Minute,
	}))
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	stop() // the server is gone; retries can only redial and fail

	execCtx, cancelExec := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancelExec()
	}()
	start = time.Now()
	_, err = client.Execute(execCtx, sectopk.TopKRequest("topk", rig.tk))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute after cancel: err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("Execute took %v to notice cancellation", took)
	}
	client.Close()
	waitForGoroutines(t, baseline)
}

// TestOverloadedRoundTripsClientWire floods a session-limited data cloud
// over TCP with a non-retrying client: overflow must come back as
// ErrOverloaded under errors.Is (the typed shed crossed the wire), while
// at least one admitted query completes correctly.
func TestOverloadedRoundTripsClientWire(t *testing.T) {
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	}, sectopk.WithSessionLimit(1))
	t.Cleanup(dc.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveClientsOn(t, dc, l)
	ctx := context.Background()
	client, err := sectopk.Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const flood = 6
	var wg sync.WaitGroup
	results := make([]error, flood)
	answers := make([]*sectopk.Answer, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], results[i] = client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
		}(i)
	}
	wg.Wait()

	completed, shed := 0, 0
	for i, err := range results {
		switch {
		case err == nil:
			got, rerr := rig.owner.Reveal(rig.er, answers[i].TopK)
			if rerr != nil {
				t.Fatalf("Reveal: %v", rerr)
			}
			if !reflect.DeepEqual(got, rig.want) {
				t.Fatalf("request %d revealed %v, want %v", i, got, rig.want)
			}
			completed++
		case errors.Is(err, sectopk.ErrOverloaded):
			shed++
		default:
			t.Fatalf("request %d: err = %v, want success or ErrOverloaded", i, err)
		}
	}
	if completed == 0 {
		t.Fatal("no request was admitted")
	}
	if shed == 0 {
		t.Fatalf("no request shed: %d concurrent against limit 1 all queued", flood)
	}
	t.Logf("%d completed, %d shed with ErrOverloaded over the wire", completed, shed)
}

// TestCloseDrainCompletesInFlight checks the graceful-drain contract on
// the data cloud itself: Close under WithDrainTimeout lets the in-flight
// query finish (and its answer reveal correctly) while a request
// arriving during the drain window sheds with ErrOverloaded.
func TestCloseDrainCompletesInFlight(t *testing.T) {
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	}, sectopk.WithDrainTimeout(time.Minute))
	t.Cleanup(dc.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveClientsOn(t, dc, l)
	ctx := context.Background()
	client, err := sectopk.Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	type outcome struct {
		ans *sectopk.Answer
		err error
	}
	inflight := make(chan outcome, 1)
	go func() {
		ans, err := client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
		inflight <- outcome{ans, err}
	}()
	// Wait for the query to be executing, then start the drain.
	time.Sleep(150 * time.Millisecond)
	closeDone := make(chan struct{})
	go func() {
		dc.Close()
		close(closeDone)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !dc.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("data cloud never entered its drain window")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New admissions shed while the drain window is open.
	if _, err := client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk)); !errors.Is(err, sectopk.ErrOverloaded) {
		t.Fatalf("execute during drain: err = %v, want ErrOverloaded", err)
	}

	// The in-flight query still completes with the right answer.
	select {
	case out := <-inflight:
		if out.err != nil {
			t.Fatalf("in-flight query aborted by drain: %v", out.err)
		}
		got, err := rig.owner.Reveal(rig.er, out.ans.TopK)
		if err != nil {
			t.Fatalf("Reveal: %v", err)
		}
		if !reflect.DeepEqual(got, rig.want) {
			t.Fatalf("revealed %v, want %v", got, rig.want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight query did not finish under drain")
	}
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the in-flight query drained")
	}
	if dc.Connected() {
		t.Fatal("Connected() = true after Close")
	}
}

// flakyListener closes its first failFirst accepted connections before
// the preface can complete, then serves normally — a listener behind a
// just-restarted or still-warming peer.
type flakyListener struct {
	net.Listener
	mu        sync.Mutex
	failFirst int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		reject := l.failFirst > 0
		if reject {
			l.failFirst--
		}
		l.mu.Unlock()
		if !reject {
			return conn, nil
		}
		conn.Close()
	}
}

// TestDialRetryFlakyListener checks DialRetry rides out a listener that
// tears down its first connections: the backoff re-dials until the
// listener behaves, and the client then works normally.
func TestDialRetryFlakyListener(t *testing.T) {
	rig := newChaosRig(t)
	dc := rig.newDataCloud(t, func(dc *sectopk.DataCloud) error {
		return dc.ConnectLocal(context.Background(), rig.cc)
	})
	t.Cleanup(dc.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveClientsOn(t, dc, &flakyListener{Listener: l, failFirst: 2})

	ctx := context.Background()
	client, err := sectopk.DialRetry(ctx, l.Addr().String(), sectopk.WithRetry(sectopk.RetryPolicy{
		Initial: 5 * time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: 6,
	}))
	if err != nil {
		t.Fatalf("DialRetry through flaky listener: %v", err)
	}
	defer client.Close()
	ans, err := client.Execute(ctx, sectopk.TopKRequest("topk", rig.tk, sectopk.WithHalting(sectopk.HaltingStrict)))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got, err := rig.owner.Reveal(rig.er, ans.TopK)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	if !reflect.DeepEqual(got, rig.want) {
		t.Fatalf("revealed %v, want %v", got, rig.want)
	}
}

// TestChaosApplyExactlyOnce drives live mutations through a
// fault-injected client wire and pins the mutation plane's exactly-once
// contract: every delta lands exactly once no matter how many times the
// link dies mid-Apply. The wire layer never blindly re-issues Apply
// (fail closed); it is the delta's idempotency key that makes the
// caller's deliberate re-issue safe — so each delta must advance the
// epoch by exactly one, a replay of a landed delta must report the
// recorded epoch without moving the relation, and the post-chaos answers
// must still match the plaintext oracle.
func TestChaosApplyExactlyOnce(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			rng := rand.New(rand.NewSource(seed))
			rig := newMutationRig(t, 2, 8, 3, rng)

			var mu sync.Mutex
			var scheds []*faultnet.Schedule
			injected := func() string {
				mu.Lock()
				defer mu.Unlock()
				var all []string
				for i, s := range scheds {
					for _, f := range s.Injected() {
						all = append(all, "conn"+strconv.Itoa(i)+": "+f)
					}
				}
				return strings.Join(all, "; ")
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := &faultnet.Listener{Listener: l, NewSchedule: func(i int) *faultnet.Schedule {
				s := faultnet.Seeded(seed+int64(i)*1021, chaosProfile())
				mu.Lock()
				scheds = append(scheds, s)
				mu.Unlock()
				return s
			}}
			stop := serveClientsOn(t, rig.dc, fl)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			client, err := sectopk.DialRetry(ctx, l.Addr().String(), sectopk.WithRetry(sectopk.RetryPolicy{
				Initial: 2 * time.Millisecond, Max: 50 * time.Millisecond, MaxElapsed: 90 * time.Second,
			}))
			if err != nil {
				t.Fatalf("DialRetry: %v\ninjected: %s", err, injected())
			}

			// shipChaos lands one delta through the faulty wire: re-issuing
			// the SAME delta (same idempotency key) until an epoch comes
			// back. A stale failure here would mean the delta applied twice.
			shipChaos := func(d *sectopk.Delta, wantEpoch uint64) {
				t.Helper()
				for attempt := 0; ; attempt++ {
					actx, acancel := context.WithTimeout(ctx, 30*time.Second)
					epoch, err := client.Apply(actx, "mut", d)
					acancel()
					if err == nil {
						if epoch != wantEpoch {
							t.Fatalf("Apply -> epoch %d, want %d (exactly-once violated)\ninjected: %s",
								epoch, wantEpoch, injected())
						}
						if err := rig.mr.Adopt(epoch); err != nil {
							t.Fatalf("Adopt(%d): %v", epoch, err)
						}
						return
					}
					if errors.Is(err, sectopk.ErrRelationStale) {
						t.Fatalf("re-issued delta came back stale — it applied twice: %v\ninjected: %s",
							err, injected())
					}
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("Apply hung until its deadline: %v\ninjected: %s", err, injected())
					}
					if code := secerr.CodeOf(err); code == secerr.CodeInternal {
						t.Fatalf("Apply failed untyped: %v\ninjected: %s", err, injected())
					}
					if attempt >= 20 {
						t.Fatalf("delta never landed after %d re-issues: %v\ninjected: %s",
							attempt, err, injected())
					}
				}
			}

			// One of each mutation class, each chaining onto the last epoch.
			ins := randomRows(rng, 1, 3)
			d, err := rig.mr.InsertRows(ins)
			if err != nil {
				t.Fatal(err)
			}
			shipChaos(d, 2)
			rig.oracle[rig.nextID] = append([]int64(nil), ins[0]...)
			rig.nextID++

			upd := []int64{777, 3, 3}
			if d, err = rig.mr.UpdateScores(map[int][]int64{1: upd}); err != nil {
				t.Fatal(err)
			}
			shipChaos(d, 3)
			rig.oracle[1] = upd

			if d, err = rig.mr.DeleteRows([]int{0}); err != nil {
				t.Fatal(err)
			}
			shipChaos(d, 4)
			delete(rig.oracle, 0)

			// Idempotency key reuse, pinned under faults too: replaying the
			// landed delete reports its recorded epoch, relation unmoved.
			for attempt := 0; ; attempt++ {
				actx, acancel := context.WithTimeout(ctx, 30*time.Second)
				again, err := client.Apply(actx, "mut", d)
				acancel()
				if err == nil {
					if again != 4 {
						t.Fatalf("replay Apply -> epoch %d, want 4\ninjected: %s", again, injected())
					}
					break
				}
				if attempt >= 20 {
					t.Fatalf("replay never answered: %v\ninjected: %s", err, injected())
				}
			}
			if got, err := rig.dc.Epoch("mut"); err != nil || got != 4 {
				t.Fatalf("relation epoch after chaos = (%d, %v), want (4, nil)", got, err)
			}

			// The surviving state still answers per the oracle.
			rig.checkEquivalence(t, []int{0, 1, 2}, 3)
			t.Logf("seed %d: 3 deltas + 1 replay landed exactly once; injected: %s", seed, injected())
			client.Close()
			stop()
			waitForGoroutines(t, baseline)
		})
	}
}
