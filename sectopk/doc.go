// Package sectopk is the public v1 API of the SecTopK system: adaptively
// CQA-secure top-k query processing over encrypted relations in the two
// non-colluding clouds model of Meng, Zhu, and Kollios (ICDE 2018), plus
// the secure top-k join operator of the paper's Section 12 and the
// secure kNN operator of Section 11.3.
//
// The package exposes the deployment roles as a coherent facade over
// the internal implementation packages:
//
//   - Owner — the data owner: generates keys, encrypts relations (top-k
//     and kNN record stores), issues query tokens, and reveals encrypted
//     results for authorized clients. JoinOwner is the multi-relation
//     variant for equi-joins.
//   - CryptoCloud — the crypto cloud S2: the only party holding
//     decryption keys. It serves blinded protocol rounds for any number
//     of registered relations, each under its own key material.
//   - DataCloud — the data cloud S1: hosts encrypted relations (Host,
//     HostJoin, HostKNN) and executes queries by driving protocol rounds
//     against a CryptoCloud, in-process or over TCP. One unified entry
//     point — Execute(ctx, Request) — runs all three workloads;
//     ServeClients puts it on the wire for remote queriers.
//   - Client — the authorized querier: holds trapdoors, dials a
//     DataCloud's client listener, and submits Requests over the client
//     wire protocol. It never holds key material; encrypted answers
//     travel back to the owner for revealing.
//   - Session — one query's lifecycle on a DataCloud: token in,
//     encrypted result out, with per-session traffic accounting (a thin
//     wrapper over Execute, as are JoinSession and SessionPool).
//
// # Contexts and cancellation
//
// Every blocking call path accepts a context.Context. Cancellation is
// cooperative and bounded by one protocol round: the engine checks the
// context between rounds, the worker pools check it inside their loops,
// and the TCP transport interrupts in-flight I/O, so a canceled query
// stops burning modular exponentiations promptly.
//
// # Errors
//
// Failures carry stable machine-readable codes that survive the wire:
// test them with errors.Is against ErrInvalidToken, ErrUnknownRelation,
// ErrProtocolVersion, ErrRelationExists, and ErrTransport. An error
// reported by the remote peer matches the same sentinels as one raised
// in-process.
//
// # Wire protocols
//
// The S1↔S2 wire protocol is versioned; peers negotiate with a Hello
// round when a DataCloud connects (and again when it hosts a relation,
// which also confirms the crypto cloud serves that relation). The
// querier↔S1 client plane is versioned separately and negotiated when a
// Client dials in; both ride the same multiplexed framing and the same
// structured error encoding. See DESIGN.md "Wire versioning and error
// codes" and "Client wire protocol v1" for the schemes.
package sectopk
