package sectopk

import (
	"context"

	"repro/internal/cloud"
	"repro/internal/knn"
	"repro/internal/paillier"
	"repro/internal/protocols"
	"repro/internal/secerr"
)

// This file promotes the secure kNN operator of Section 11.3 (Elmehdwi,
// Samanthula, Jiang — the paper's reference [21]) to a first-class
// workload of the public API: the owner encrypts a record store and
// issues kNN trapdoors, the data cloud hosts it and answers k-nearest
// queries, and the owner reveals (object, squared distance) pairs. The
// operator's O(n*m) per-query cost profile is the baseline the paper's
// evaluation compares SecTopK against.

// EncryptedKNNRelation is an outsourced kNN record store: per-record
// encrypted ids and attribute values plus the public key they were
// encrypted under. It carries only public material — safe to hand to the
// data cloud.
type EncryptedKNNRelation struct {
	db           *knn.EncDatabase
	pk           *paillier.PublicKey
	maxScoreBits int
}

// Name returns the relation's name.
func (er *EncryptedKNNRelation) Name() string { return er.db.Name }

// Rows returns the record count n.
func (er *EncryptedKNNRelation) Rows() int { return er.db.N }

// Attributes returns the attribute count m.
func (er *EncryptedKNNRelation) Attributes() int { return er.db.M }

// KNNQuery describes one k-nearest-neighbors query: the query point (one
// coordinate per attribute, each within the owner's WithMaxScoreBits
// bound) and k.
type KNNQuery struct {
	Point []int64
	K     int
}

// KNNToken is the kNN trapdoor an authorized client sends to the data
// cloud: the query point travels inside it and is Paillier-encrypted by
// S1 before any protocol round, per [21]'s query model. The point's
// length is the attribute count it was issued for; the execution path
// re-checks it (and the coordinate bounds) against the hosted store.
type KNNToken struct {
	point []int64
	k     int
}

// K returns the query's k.
func (t *KNNToken) K() int { return t.k }

// EncryptedKNNResult is the encrypted outcome of one kNN query: the k
// nearest records, ids and squared distances still encrypted, ranked
// nearest-first.
type EncryptedKNNResult struct {
	items []protocols.Item
}

// Len returns the number of encrypted result items.
func (r *EncryptedKNNResult) Len() int { return len(r.items) }

// KNNResult is one revealed kNN answer: the record's row index in the
// original relation and its squared L2 distance from the query point.
type KNNResult struct {
	Object   int
	Distance int64
}

// EncryptKNN outsources a relation as a kNN record store: each record's
// id is EHL-encrypted under the owner's kNN digest key and every
// attribute value is Paillier-encrypted. The same owner can host top-k
// and kNN encryptions of one logical relation side by side (under
// distinct relation IDs).
func (o *Owner) EncryptKNN(rel *Relation) (*EncryptedKNNRelation, error) {
	d, err := rel.toDataset()
	if err != nil {
		return nil, err
	}
	s, err := o.knnScheme()
	if err != nil {
		return nil, err
	}
	db, err := s.Encrypt(d)
	if err != nil {
		return nil, err
	}
	return &EncryptedKNNRelation{
		db: db, pk: o.scheme.PublicKey(),
		maxScoreBits: o.scheme.Params().MaxScoreBits,
	}, nil
}

// KNNToken issues the trapdoor for one kNN query over an encrypted kNN
// relation. Invalid queries (dimension mismatch, non-positive k,
// out-of-bound coordinates) fail with ErrInvalidToken.
func (o *Owner) KNNToken(er *EncryptedKNNRelation, q KNNQuery) (*KNNToken, error) {
	if er == nil {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: nil encrypted kNN relation")
	}
	if len(q.Point) != er.db.M {
		return nil, secerr.New(secerr.CodeInvalidToken,
			"sectopk: kNN query point has %d coordinates, relation has %d attributes", len(q.Point), er.db.M)
	}
	if q.K <= 0 {
		return nil, secerr.New(secerr.CodeInvalidToken, "sectopk: kNN k=%d must be positive", q.K)
	}
	if err := validateKNNPoint(q.Point, er.maxScoreBits); err != nil {
		return nil, err
	}
	point := append([]int64(nil), q.Point...)
	return &KNNToken{point: point, k: q.K}, nil
}

// validateKNNPoint bounds every query coordinate to [0, 2^maxScoreBits):
// out-of-range values would overflow the distance-comparison masks and
// rank silently wrong. Enforced both at token issue time and on the
// execution path, so a hand-crafted wire token fails with the same
// ErrInvalidToken an in-process caller would get.
func validateKNNPoint(point []int64, maxScoreBits int) error {
	for j, v := range point {
		// maxScoreBits >= 63 admits every non-negative int64 (shifting
		// would overflow).
		if v < 0 || (maxScoreBits < 63 && v >= int64(1)<<uint(maxScoreBits)) {
			return secerr.New(secerr.CodeInvalidToken,
				"sectopk: kNN query coordinate %d = %d outside [0, 2^%d)", j, v, maxScoreBits)
		}
	}
	return nil
}

// RevealKNN decrypts an encrypted kNN result into (object, squared
// distance) pairs, nearest-first. Only the owner that encrypted the
// relation (or a restored copy of it — the digest key derives from the
// persisted owner secrets) can reveal.
func (o *Owner) RevealKNN(er *EncryptedKNNRelation, res *EncryptedKNNResult) ([]KNNResult, error) {
	if er == nil || res == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: nil kNN relation or result")
	}
	rev, err := o.knnRevealer(er.db.N)
	if err != nil {
		return nil, err
	}
	out := make([]KNNResult, len(res.items))
	for i, it := range res.items {
		obj, dist, err := rev.Reveal(it)
		if err != nil {
			return nil, err
		}
		out[i] = KNNResult{Object: obj, Distance: dist}
	}
	return out, nil
}

// PlainKNN computes the ground-truth k nearest neighbors by squared L2
// distance — the oracle secure runs are checked against.
func PlainKNN(rel *Relation, point []int64, k int) ([]KNNResult, error) {
	d, err := rel.toDataset()
	if err != nil {
		return nil, err
	}
	objs, dists, err := knn.PlainKNN(d, point, k)
	if err != nil {
		return nil, err
	}
	out := make([]KNNResult, len(objs))
	for i := range objs {
		out[i] = KNNResult{Object: objs[i], Distance: dists[i]}
	}
	return out, nil
}

// hostedKNN is one kNN record store this data cloud answers queries for.
type hostedKNN struct {
	client *cloud.Client
	engine *knn.Engine
	er     *EncryptedKNNRelation
}

// HostKNN registers an encrypted kNN relation under id: it confirms (via
// a Hello round) that the connected crypto cloud serves the relation,
// then builds the S1 kNN engine for it. The ID shares one namespace with
// top-k and join relations.
func (d *DataCloud) HostKNN(ctx context.Context, id string, er *EncryptedKNNRelation) error {
	if id == "" || er == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: missing relation id or kNN relation")
	}
	caller, err := d.connectedCaller()
	if err != nil {
		return err
	}
	d.mu.Lock()
	err = d.hostableLocked(id)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	client, err := cloud.NewClient(caller, er.pk, d.ledger, append(d.cfg.cloudOptions(), cloud.WithRelation(id))...)
	if err != nil {
		return err
	}
	if err := client.Handshake(ctx); err != nil {
		client.Close()
		return err
	}
	engine, err := knn.NewEngine(client, er.db, er.maxScoreBits)
	if err != nil {
		client.Close()
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.hostableLocked(id); err != nil {
		client.Close()
		return err
	}
	d.knns[id] = &hostedKNN{client: client, engine: engine, er: er}
	return nil
}
