package sectopk_test

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"

	"repro/sectopk"
)

// testOpts keeps test key material small and fast.
func testOpts(extra ...sectopk.Option) []sectopk.Option {
	return append([]sectopk.Option{
		sectopk.WithKeyBits(256),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	}, extra...)
}

func demoRelation() *sectopk.Relation {
	return &sectopk.Relation{
		Name: "demo",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	}
}

// localRig stands up owner + crypto cloud + data cloud in-process.
func localRig(t testing.TB, relation string, opts ...sectopk.Option) (*sectopk.Owner, *sectopk.CryptoCloud, *sectopk.DataCloud, *sectopk.EncryptedRelation) {
	t.Helper()
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts(opts...)...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	cc := sectopk.NewCryptoCloud(testOpts(opts...)...)
	t.Cleanup(cc.Close)
	if err := cc.Register(relation, owner.Keys()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	dc := sectopk.NewDataCloud(testOpts(opts...)...)
	t.Cleanup(dc.Close)
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatalf("ConnectLocal: %v", err)
	}
	if err := dc.Host(ctx, relation, er); err != nil {
		t.Fatalf("Host: %v", err)
	}
	return owner, cc, dc, er
}

func runSession(t testing.TB, owner *sectopk.Owner, dc *sectopk.DataCloud, relation string, er *sectopk.EncryptedRelation, q sectopk.Query, opts ...sectopk.QueryOption) []sectopk.Result {
	t.Helper()
	tk, err := owner.Token(er, q)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	sess, err := dc.NewSession(relation, tk, opts...)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := sess.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	out, err := owner.Reveal(er, res)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	return out
}

// TestEndToEndLocal runs the full public-API pipeline over the
// in-process transport across all three query modes.
func TestEndToEndLocal(t *testing.T) {
	owner, _, dc, er := localRig(t, "demo")
	want := []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}}
	for _, mode := range []sectopk.Mode{sectopk.ModeFull, sectopk.ModeEliminate, sectopk.ModeBatched} {
		got := runSession(t, owner, dc, "demo", er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2},
			sectopk.WithMode(mode), sectopk.WithHalting(sectopk.HaltingStrict))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: top-2 = %+v, want %+v", mode, got, want)
		}
	}
	if tr := dc.Traffic(); tr.Rounds == 0 || tr.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", dc.Traffic())
	}
	if len(dc.LeakageEvents()) == 0 {
		t.Fatal("S1 leakage ledger empty")
	}
}

// TestSessionAccounting checks the per-session lifecycle surface.
func TestSessionAccounting(t *testing.T) {
	owner, cc, dc, er := localRig(t, "demo")
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewSession("demo", tk, sectopk.WithMode(sectopk.ModeEliminate))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result() != nil {
		t.Fatal("Result before Execute should be nil")
	}
	res, err := sess.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result() != res {
		t.Fatal("Result() does not return the Execute outcome")
	}
	if res.Len() != 2 || res.Depth == 0 || !res.Halted {
		t.Fatalf("unexpected result shape: len=%d depth=%d halted=%v", res.Len(), res.Depth, res.Halted)
	}
	if tr := sess.Traffic(); tr.Rounds == 0 || tr.Bytes == 0 {
		t.Fatalf("session traffic empty: %+v", tr)
	}
	if len(cc.LeakageEvents()) == 0 {
		t.Fatal("S2 leakage ledger empty")
	}
}

// TestTypedErrorsFacade checks the error taxonomy at the public surface.
func TestTypedErrorsFacade(t *testing.T) {
	owner, cc, dc, er := localRig(t, "demo")
	ctx := context.Background()

	// Invalid tokens.
	if _, err := owner.Token(er, sectopk.Query{Attrs: []int{0}, K: 0}); !errors.Is(err, sectopk.ErrInvalidToken) {
		t.Fatalf("k=0: want ErrInvalidToken, got %v", err)
	}
	if _, err := owner.Token(er, sectopk.Query{Attrs: []int{99}, K: 1}); !errors.Is(err, sectopk.ErrInvalidToken) {
		t.Fatalf("bad attr: want ErrInvalidToken, got %v", err)
	}
	// Unknown relation at session creation.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.NewSession("ghost", tk); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("want ErrUnknownRelation, got %v", err)
	}
	// Duplicate registration / hosting.
	if err := cc.Register("demo", owner.Keys()); !errors.Is(err, sectopk.ErrRelationExists) {
		t.Fatalf("duplicate Register: want ErrRelationExists, got %v", err)
	}
	if err := dc.Host(ctx, "demo", er); !errors.Is(err, sectopk.ErrRelationExists) {
		t.Fatalf("duplicate Host: want ErrRelationExists, got %v", err)
	}
	// Hosting a relation S2 does not serve.
	if err := dc.Host(ctx, "unregistered", er); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("Host of unregistered relation: want ErrUnknownRelation, got %v", err)
	}
}

// TestEndToEndTCP runs the pipeline with S1 and S2 as separate parties
// over a real TCP connection, and checks typed errors survive the wire.
func TestEndToEndTCP(t *testing.T) {
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("demo", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	go func() { _ = cc.Serve(serveCtx, l) }()

	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.Dial(ctx, l.Addr().String()); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := dc.Host(ctx, "ghost", er); !errors.Is(err, sectopk.ErrUnknownRelation) {
		t.Fatalf("Host ghost over TCP: want ErrUnknownRelation, got %v", err)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		t.Fatalf("Host: %v", err)
	}
	got := runSession(t, owner, dc, "demo", er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2},
		sectopk.WithMode(sectopk.ModeEliminate), sectopk.WithHalting(sectopk.HaltingStrict))
	want := []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TCP top-2 = %+v, want %+v", got, want)
	}
}

// TestMultiRelationIsolation registers two relations (separate owners,
// separate key material) on ONE crypto cloud, interleaves queries
// against both, and checks each stream of results is identical to a
// dedicated single-relation rig's.
func TestMultiRelationIsolation(t *testing.T) {
	ctx := context.Background()
	relA := demoRelation()
	relB := &sectopk.Relation{
		Name: "other",
		Rows: [][]int64{
			{1, 9, 4},
			{7, 2, 2},
			{3, 3, 9},
			{9, 8, 1},
			{2, 6, 5},
			{4, 4, 4},
		},
	}
	queries := []sectopk.Query{
		{Attrs: []int{0, 1, 2}, K: 2},
		{Attrs: []int{0, 1}, K: 3},
		{Attrs: []int{2}, K: 1},
	}

	// Reference: two dedicated single-relation rigs.
	single := func(rel *sectopk.Relation) [][]sectopk.Result {
		owner, err := sectopk.NewOwner(testOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		er, err := owner.Encrypt(rel)
		if err != nil {
			t.Fatal(err)
		}
		cc := sectopk.NewCryptoCloud(testOpts()...)
		defer cc.Close()
		if err := cc.Register(rel.Name, owner.Keys()); err != nil {
			t.Fatal(err)
		}
		dc := sectopk.NewDataCloud(testOpts()...)
		defer dc.Close()
		if err := dc.ConnectLocal(ctx, cc); err != nil {
			t.Fatal(err)
		}
		if err := dc.Host(ctx, rel.Name, er); err != nil {
			t.Fatal(err)
		}
		var out [][]sectopk.Result
		for _, q := range queries {
			out = append(out, runSession(t, owner, dc, rel.Name, er, q, sectopk.WithHalting(sectopk.HaltingStrict)))
		}
		return out
	}
	wantA := single(relA)
	wantB := single(relB)

	// One crypto cloud serving both relations, queries interleaved.
	ownerA, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ownerB, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	erA, err := ownerA.Encrypt(relA)
	if err != nil {
		t.Fatal(err)
	}
	erB, err := ownerB.Encrypt(relB)
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("A", ownerA.Keys()); err != nil {
		t.Fatal(err)
	}
	if err := cc.Register("B", ownerB.Keys()); err != nil {
		t.Fatal(err)
	}
	if got := cc.Relations(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Relations = %v", got)
	}
	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "A", erA); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "B", erB); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		gotA := runSession(t, ownerA, dc, "A", erA, q, sectopk.WithHalting(sectopk.HaltingStrict))
		gotB := runSession(t, ownerB, dc, "B", erB, q, sectopk.WithHalting(sectopk.HaltingStrict))
		if !reflect.DeepEqual(gotA, wantA[i]) {
			t.Fatalf("query %d relation A: multi-rig %+v != single-rig %+v", i, gotA, wantA[i])
		}
		if !reflect.DeepEqual(gotB, wantB[i]) {
			t.Fatalf("query %d relation B: multi-rig %+v != single-rig %+v", i, gotB, wantB[i])
		}
	}
}

// TestFacadeCancellation checks cooperative cancellation at the public
// surface: an already-canceled context fails fast with context.Canceled.
func TestFacadeCancellation(t *testing.T) {
	owner, _, dc, er := localRig(t, "demo")
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewSession("demo", tk)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The session (and its connection) remain usable for a fresh context.
	if _, err := sess.Execute(context.Background()); err != nil {
		t.Fatalf("session unusable after canceled run: %v", err)
	}
}

// TestSecureJoinFacade runs the Section 12 join through the public API
// and checks it against the plaintext oracle.
func TestSecureJoinFacade(t *testing.T) {
	ctx := context.Background()
	r1 := &sectopk.Relation{Name: "teams", Rows: [][]int64{
		{1, 90, 12}, {2, 75, 7}, {3, 82, 20}, {2, 88, 5},
	}}
	r2 := &sectopk.Relation{Name: "budgets", Rows: [][]int64{
		{2, 40, 3}, {3, 55, 6}, {1, 30, 2}, {5, 99, 9},
	}}
	q := sectopk.JoinQuery{JoinAttr1: 0, JoinAttr2: 0, ScoreAttr1: 1, ScoreAttr2: 1,
		Project1: []int{2}, Project2: []int{2}, K: 3}

	jo, err := sectopk.NewJoinOwner(sectopk.WithKeyBits(256), sectopk.WithEHLDigests(3), sectopk.WithMaxScoreBits(16))
	if err != nil {
		t.Fatal(err)
	}
	er1, err := jo.Encrypt(r1)
	if err != nil {
		t.Fatal(err)
	}
	er2, err := jo.Encrypt(r2)
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("hr", jo.Keys()); err != nil {
		t.Fatal(err)
	}
	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.HostJoin(ctx, "hr", er1, er2); err != nil {
		t.Fatalf("HostJoin: %v", err)
	}
	tk, err := jo.Token(er1, er2, q)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewJoinSession("hr", tk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		t.Fatalf("join Execute: %v", err)
	}
	got, err := jo.Reveal(res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sectopk.PlainTopKJoin(r1, r2, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("join returned %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			t.Fatalf("tuple %d score %d, want %d", i, got[i].Score, want[i].Score)
		}
	}
	if tr := sess.Traffic(); tr.Rounds == 0 {
		t.Fatal("join session recorded no traffic")
	}
}

// TestPersistenceRoundTrip moves every artifact through its file format:
// owner bundle, keys, relation, token, result.
func TestPersistenceRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	owner, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]string{
		"owner": dir + "/owner.bundle", "keys": dir + "/s2.keys",
		"rel": dir + "/relation.er", "tok": dir + "/query.tk", "res": dir + "/result.items",
	}
	if err := owner.Save(paths["owner"]); err != nil {
		t.Fatal(err)
	}
	if err := owner.Keys().Save(paths["keys"]); err != nil {
		t.Fatal(err)
	}
	if err := er.Save(paths["rel"]); err != nil {
		t.Fatal(err)
	}
	if err := tk.Save(paths["tok"]); err != nil {
		t.Fatal(err)
	}

	// A fresh set of processes loads everything back.
	keys, err := sectopk.LoadKeys(paths["keys"])
	if err != nil {
		t.Fatal(err)
	}
	er2, err := sectopk.LoadEncryptedRelation(paths["rel"])
	if err != nil {
		t.Fatal(err)
	}
	if er2.Name() != "demo" || er2.Rows() != 5 || er2.Attributes() != 3 {
		t.Fatalf("reloaded relation shape: %s %dx%d", er2.Name(), er2.Rows(), er2.Attributes())
	}
	tk2, err := sectopk.LoadToken(paths["tok"])
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("demo", keys); err != nil {
		t.Fatal(err)
	}
	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "demo", er2); err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewSession("demo", tk2, sectopk.WithHalting(sectopk.HaltingStrict))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Save(paths["res"]); err != nil {
		t.Fatal(err)
	}
	res2, err := sectopk.LoadEncryptedResult(paths["res"])
	if err != nil {
		t.Fatal(err)
	}
	if res2.Depth != res.Depth || res2.Halted != res.Halted || res2.Len() != res.Len() {
		t.Fatalf("reloaded result mismatch: %+v vs %+v", res2, res)
	}
	owner2, err := sectopk.LoadOwner(paths["owner"])
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner2.Reveal(er2, res2)
	if err != nil {
		t.Fatalf("Reveal with restored owner: %v", err)
	}
	want := []sectopk.Result{{Object: 2, Score: 18}, {Object: 1, Score: 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored pipeline top-2 = %+v, want %+v", got, want)
	}
}
