package sectopk_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/sectopk"
)

// mutationRig is a live-update test bed: the in-process clouds hosting
// one relation, the owner's mutable handle on it, and the plaintext
// oracle the encrypted answers must match.
type mutationRig struct {
	owner  *sectopk.Owner
	dc     *sectopk.DataCloud
	mr     *sectopk.MutableRelation
	oracle map[int][]int64
	nextID int
}

// newMutationRig stands the stack up over p shards with n random rows
// of m attributes.
func newMutationRig(t testing.TB, p, n, m int, rng *rand.Rand, opts ...sectopk.Option) *mutationRig {
	t.Helper()
	ctx := context.Background()
	rel := &sectopk.Relation{Name: "mut", Rows: randomRows(rng, n, m)}
	owner, err := sectopk.NewOwner(testOpts(append(opts, sectopk.WithShards(p))...)...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	mr, err := owner.NewMutable(rel, er)
	if err != nil {
		t.Fatalf("NewMutable: %v", err)
	}
	cc := sectopk.NewCryptoCloud(testOpts(opts...)...)
	t.Cleanup(cc.Close)
	if err := cc.Register("mut", owner.Keys()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	dc := sectopk.NewDataCloud(testOpts(opts...)...)
	t.Cleanup(dc.Close)
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatalf("ConnectLocal: %v", err)
	}
	if err := dc.Host(ctx, "mut", er); err != nil {
		t.Fatalf("Host: %v", err)
	}
	oracle := make(map[int][]int64, n)
	for i, row := range rel.Rows {
		oracle[i] = append([]int64(nil), row...)
	}
	return &mutationRig{owner: owner, dc: dc, mr: mr, oracle: oracle, nextID: n}
}

// randomRows draws scores small enough to stay far from the score-bit
// bound yet spread enough that aggregate ties are rare.
func randomRows(rng *rand.Rand, n, m int) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = make([]int64, m)
		for j := range rows[i] {
			rows[i][j] = int64(rng.Intn(1000))
		}
	}
	return rows
}

// oracleTopK computes the plaintext answer: aggregate score over attrs,
// descending, k best.
func oracleTopK(rows map[int][]int64, attrs []int, k int) []sectopk.Result {
	type sr struct {
		id    int
		score int64
	}
	all := make([]sr, 0, len(rows))
	for id, row := range rows {
		var s int64
		for _, a := range attrs {
			s += row[a]
		}
		all = append(all, sr{id, s})
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].score != all[y].score {
			return all[x].score > all[y].score
		}
		return all[x].id < all[y].id
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]sectopk.Result, len(all))
	for i, e := range all {
		out[i] = sectopk.Result{Object: e.id, Score: e.score}
	}
	return out
}

// sameTopK compares answers up to tie order: scores must match
// positionally, and within each equal-score run the object sets must
// match (the protocol does not promise a tie order).
func sameTopK(got, want []sectopk.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			return false
		}
	}
	for i := 0; i < len(got); {
		j := i
		for j < len(got) && got[j].Score == got[i].Score {
			j++
		}
		g := map[int]bool{}
		w := map[int]bool{}
		for x := i; x < j; x++ {
			g[got[x].Object] = true
			w[want[x].Object] = true
		}
		for id := range g {
			if !w[id] {
				return false
			}
		}
		i = j
	}
	return true
}

// checkEquivalence runs one top-k query at the current epoch and
// compares the revealed answer against the plaintext oracle.
func (r *mutationRig) checkEquivalence(t *testing.T, attrs []int, k int) {
	t.Helper()
	tk, err := r.mr.Token(sectopk.Query{Attrs: attrs, K: k})
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	ans, err := r.dc.Execute(context.Background(), sectopk.TopKRequest("mut", tk,
		sectopk.WithHalting(sectopk.HaltingStrict)))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	erv, err := r.mr.Encrypted()
	if err != nil {
		t.Fatalf("Encrypted: %v", err)
	}
	got, err := r.owner.Reveal(erv, ans.TopK)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	want := oracleTopK(r.oracle, attrs, k)
	if !sameTopK(got, want) {
		t.Fatalf("epoch %d: top-%d over %v = %+v, oracle says %+v", r.mr.Epoch(), k, attrs, got, want)
	}
}

// ship lands one delta on the data cloud and synchronizes the owner.
func (r *mutationRig) ship(t *testing.T, d *sectopk.Delta) {
	t.Helper()
	epoch, err := r.dc.Apply(context.Background(), "mut", d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := r.mr.Adopt(epoch); err != nil {
		t.Fatalf("Adopt(%d): %v", epoch, err)
	}
}

// liveIDs returns the oracle's ids, sorted for deterministic draws.
func (r *mutationRig) liveIDs() []int {
	ids := make([]int, 0, len(r.oracle))
	for id := range r.oracle {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// mutateRandomly performs one random mutation (insert, delete, update,
// or compact), keeping oracle and encrypted state in lockstep.
func (r *mutationRig) mutateRandomly(t *testing.T, rng *rand.Rand, m int) {
	t.Helper()
	switch op := rng.Intn(4); {
	case op == 0: // insert 1-2 rows
		rows := randomRows(rng, 1+rng.Intn(2), m)
		d, err := r.mr.InsertRows(rows)
		if err != nil {
			t.Fatalf("InsertRows: %v", err)
		}
		r.ship(t, d)
		for _, row := range rows {
			r.oracle[r.nextID] = append([]int64(nil), row...)
			r.nextID++
		}
	case op == 1 && len(r.oracle) > 5: // delete 1-2 rows
		ids := r.liveIDs()
		n := 1 + rng.Intn(2)
		del := make([]int, 0, n)
		for _, i := range rng.Perm(len(ids))[:n] {
			del = append(del, ids[i])
		}
		d, err := r.mr.DeleteRows(del)
		if err != nil {
			t.Fatalf("DeleteRows(%v): %v", del, err)
		}
		r.ship(t, d)
		for _, id := range del {
			delete(r.oracle, id)
		}
	case op == 2: // update 1-2 rows
		ids := r.liveIDs()
		n := 1 + rng.Intn(2)
		upd := make(map[int][]int64, n)
		for _, i := range rng.Perm(len(ids))[:n] {
			upd[ids[i]] = randomRows(rng, 1, m)[0]
		}
		d, err := r.mr.UpdateScores(upd)
		if err != nil {
			t.Fatalf("UpdateScores: %v", err)
		}
		r.ship(t, d)
		for id, row := range upd {
			r.oracle[id] = append([]int64(nil), row...)
		}
	default: // compact (also the fallthrough when a delete would go too small)
		epoch, err := r.dc.Compact(context.Background(), "mut")
		if err != nil {
			t.Fatalf("Compact: %v", err)
		}
		if err := r.mr.Adopt(epoch); err != nil {
			t.Fatalf("Adopt(%d): %v", epoch, err)
		}
	}
}

// TestMutationOracleEquivalence interleaves random inserts, deletes,
// score updates, and compactions, and checks after every landed epoch
// that the revealed encrypted top-k equals the plaintext oracle — for
// an unsharded relation and for sharded ones.
func TestMutationOracleEquivalence(t *testing.T) {
	for _, tc := range []struct {
		p    int
		seed int64
	}{{1, 11}, {2, 22}, {4, 44}} {
		tc := tc
		t.Run(shardName(tc.p), func(t *testing.T) {
			t.Parallel()
			const m = 3
			rng := rand.New(rand.NewSource(tc.seed))
			rig := newMutationRig(t, tc.p, 8, m, rng)
			rig.checkEquivalence(t, []int{0, 1, 2}, 3)
			attrSets := [][]int{{0, 1, 2}, {0, 1}, {2}}
			for step := 0; step < 5; step++ {
				rig.mutateRandomly(t, rng, m)
				rig.checkEquivalence(t, attrSets[step%len(attrSets)], 3)
			}
			if rig.mr.Epoch() < 2 {
				t.Fatalf("mutation script advanced no epochs (epoch %d)", rig.mr.Epoch())
			}
		})
	}
}

func shardName(p int) string {
	return map[int]string{1: "P=1", 2: "P=2", 4: "P=4"}[p]
}

// TestMutationEpochFencing pins queries and deltas to epochs and checks
// every skew fails typed — plus that replaying a landed delta is
// exactly-once.
func TestMutationEpochFencing(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	rig := newMutationRig(t, 2, 8, 3, rng)

	// Two deltas produced in sequence target epochs 1 and 2; shipping the
	// second first must fail stale and change nothing.
	d1, err := rig.mr.InsertRows(randomRows(rng, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rig.mr.DeleteRows([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.dc.Apply(ctx, "mut", d2); !errors.Is(err, sectopk.ErrRelationStale) {
		t.Fatalf("out-of-order Apply err = %v, want ErrRelationStale", err)
	}
	epoch, err := rig.dc.Apply(ctx, "mut", d1)
	if err != nil {
		t.Fatalf("Apply(d1): %v", err)
	}
	if epoch != 2 {
		t.Fatalf("Apply(d1) -> epoch %d, want 2", epoch)
	}
	// Exactly-once: replaying d1 reports the recorded epoch without
	// moving the relation.
	again, err := rig.dc.Apply(ctx, "mut", d1)
	if err != nil || again != epoch {
		t.Fatalf("replay Apply(d1) = (%d, %v), want (%d, nil)", again, err, epoch)
	}
	if got, _ := rig.dc.Epoch("mut"); got != 2 {
		t.Fatalf("epoch after replay = %d, want 2", got)
	}
	// Now d2 lands in order.
	if epoch, err = rig.dc.Apply(ctx, "mut", d2); err != nil || epoch != 3 {
		t.Fatalf("Apply(d2) = (%d, %v), want (3, nil)", epoch, err)
	}
	if err := rig.mr.Adopt(3); err != nil {
		t.Fatalf("Adopt(3): %v", err)
	}

	// A query pinned to a gone epoch fails typed; pinned to the current
	// one it runs.
	tk, err := rig.mr.Token(sectopk.Query{Attrs: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rig.dc.Execute(ctx, sectopk.TopKRequest("mut", tk, sectopk.WithEpoch(1)))
	if !errors.Is(err, sectopk.ErrRelationStale) {
		t.Fatalf("pinned-stale Execute err = %v, want ErrRelationStale", err)
	}
	if _, err := rig.dc.Execute(ctx, sectopk.TopKRequest("mut", tk, sectopk.WithEpoch(3))); err != nil {
		t.Fatalf("pinned-current Execute: %v", err)
	}

	// An adoption the owner cannot replay (epoch jumped past compaction
	// range) fails typed.
	if err := rig.mr.Adopt(9); !errors.Is(err, sectopk.ErrRelationStale) {
		t.Fatalf("Adopt(9) err = %v, want ErrRelationStale", err)
	}
}

// TestMutationWrongWorkload checks Apply against join- and kNN-hosted
// ids fails typed, naming the hosted kind — those relations are
// encrypt-once.
func TestMutationWrongWorkload(t *testing.T) {
	ctx := context.Background()
	rig := newFullRig(t)
	rel := demoRelation()
	mr, err := rig.owner.NewMutable(rel, rig.er)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mr.DeleteRows([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"join", "knn", "ghost"} {
		if _, err := rig.dc.Apply(ctx, id, d); !errors.Is(err, sectopk.ErrUnknownRelation) {
			t.Fatalf("Apply(%q) err = %v, want ErrUnknownRelation", id, err)
		}
	}
	if _, err := rig.dc.Apply(ctx, "topk", nil); !errors.Is(err, sectopk.ErrBadRequest) {
		t.Fatalf("Apply(nil) err = %v, want ErrBadRequest", err)
	}
}

// TestMutationCompactThreshold checks the server-side trigger: once the
// dead count reaches WithCompactThreshold, an Apply folds tombstones in
// the same transition (epoch +2) and the owner's Adopt replays it.
func TestMutationCompactThreshold(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	rig := newMutationRig(t, 2, 8, 3, rng, sectopk.WithCompactThreshold(2))

	d1, err := rig.mr.DeleteRows([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := rig.dc.Apply(ctx, "mut", d1)
	if err != nil || epoch != 2 {
		t.Fatalf("Apply(d1) = (%d, %v), want (2, nil) — below threshold", epoch, err)
	}
	if err := rig.mr.Adopt(epoch); err != nil {
		t.Fatal(err)
	}
	delete(rig.oracle, 1)

	// Second delete reaches the threshold: the transition lands the delta
	// AND the compaction, so the epoch advances by two.
	d2, err := rig.mr.DeleteRows([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err = rig.dc.Apply(ctx, "mut", d2)
	if err != nil || epoch != 4 {
		t.Fatalf("Apply(d2) = (%d, %v), want (4, nil) — threshold compaction", epoch, err)
	}
	if err := rig.mr.Adopt(epoch); err != nil {
		t.Fatalf("Adopt(%d): %v", epoch, err)
	}
	delete(rig.oracle, 2)
	if dead := rig.mr.DeadRows(); dead != 0 {
		t.Fatalf("DeadRows after threshold compaction = %d, want 0", dead)
	}
	rig.checkEquivalence(t, []int{0, 1, 2}, 3)
}

// TestMutablePersistence saves and reloads every mutable artifact
// mid-history: the owner bundle resumes producing deltas at the right
// epoch, and an epoch-stamped hosted bundle re-hosts with its mutation
// state (epoch, tombstones, id space) intact.
func TestMutablePersistence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	rig := newMutationRig(t, 2, 8, 3, rng)
	dir := t.TempDir()

	// Advance one epoch (an update leaves tombstones behind), then save
	// both owner and hosted artifacts.
	d, err := rig.mr.UpdateScores(map[int][]int64{3: {900, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rig.ship(t, d)
	rig.oracle[3] = []int64{900, 1, 1}

	mirror := filepath.Join(dir, "mut.mr")
	if err := rig.mr.Save(mirror); err != nil {
		t.Fatalf("mirror Save: %v", err)
	}
	erv, err := rig.mr.Encrypted()
	if err != nil {
		t.Fatal(err)
	}
	hosted := filepath.Join(dir, "mut.er")
	if err := erv.Save(hosted); err != nil {
		t.Fatalf("hosted Save: %v", err)
	}

	// The reloaded owner handle continues the history: same epoch, and
	// the next delta chains onto it.
	mr2, err := rig.owner.LoadMutable(mirror)
	if err != nil {
		t.Fatalf("LoadMutable: %v", err)
	}
	if mr2.Epoch() != rig.mr.Epoch() {
		t.Fatalf("reloaded epoch = %d, want %d", mr2.Epoch(), rig.mr.Epoch())
	}
	if mr2.LiveRows() != len(rig.oracle) {
		t.Fatalf("reloaded live rows = %d, want %d", mr2.LiveRows(), len(rig.oracle))
	}
	d2, err := mr2.InsertRows([][]int64{{5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := rig.dc.Apply(ctx, "mut", d2)
	if err != nil {
		t.Fatalf("Apply(from reloaded owner): %v", err)
	}
	if err := mr2.Adopt(epoch); err != nil {
		t.Fatal(err)
	}
	rig.mr = mr2
	rig.oracle[rig.nextID] = []int64{5, 5, 5}
	rig.nextID++
	rig.checkEquivalence(t, []int{0, 1, 2}, 3)

	// The epoch-stamped hosted bundle round-trips with its state: a fresh
	// data cloud hosts it at the saved epoch and answers queries.
	er2, err := sectopk.LoadEncryptedRelation(hosted)
	if err != nil {
		t.Fatalf("LoadEncryptedRelation: %v", err)
	}
	if er2.Epoch() != 2 {
		t.Fatalf("reloaded hosted epoch = %d, want 2", er2.Epoch())
	}
	cc2 := sectopk.NewCryptoCloud(testOpts()...)
	t.Cleanup(cc2.Close)
	if err := cc2.Register("mut", rig.owner.Keys()); err != nil {
		t.Fatal(err)
	}
	dc2 := sectopk.NewDataCloud(testOpts()...)
	t.Cleanup(dc2.Close)
	if err := dc2.ConnectLocal(ctx, cc2); err != nil {
		t.Fatal(err)
	}
	if err := dc2.Host(ctx, "mut", er2); err != nil {
		t.Fatalf("re-Host: %v", err)
	}
	if epoch, err := dc2.Epoch("mut"); err != nil || epoch != 2 {
		t.Fatalf("re-hosted Epoch = (%d, %v), want (2, nil)", epoch, err)
	}
}

// TestMutationOverWire drives the full live-update loop across the
// client wire: Apply and Compact land remotely, the post-mutation query
// answers match the oracle, and the epoch pin round-trips.
func TestMutationOverWire(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	rig := newMutationRig(t, 2, 8, 3, rng)
	addr, _ := serveClients(t, rig.dc)
	client, err := sectopk.Dial(ctx, addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	d, err := rig.mr.UpdateScores(map[int][]int64{0: {999, 999, 999}})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := client.Apply(ctx, "mut", d)
	if err != nil {
		t.Fatalf("client Apply: %v", err)
	}
	if err := rig.mr.Adopt(epoch); err != nil {
		t.Fatal(err)
	}
	rig.oracle[0] = []int64{999, 999, 999}

	// Retrying the landed delta over the wire is exactly-once too.
	if again, err := client.Apply(ctx, "mut", d); err != nil || again != epoch {
		t.Fatalf("wire replay = (%d, %v), want (%d, nil)", again, err, epoch)
	}

	// Remote query at the new epoch, pinned: stale pin fails typed, the
	// current pin answers per the oracle.
	tk, err := rig.mr.Token(sectopk.Query{Attrs: []int{0, 1, 2}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Execute(ctx, sectopk.TopKRequest("mut", tk, sectopk.WithEpoch(1)))
	if !errors.Is(err, sectopk.ErrRelationStale) {
		t.Fatalf("wire pinned-stale err = %v, want ErrRelationStale", err)
	}
	ans, err := client.Execute(ctx, sectopk.TopKRequest("mut", tk,
		sectopk.WithEpoch(epoch), sectopk.WithHalting(sectopk.HaltingStrict)))
	if err != nil {
		t.Fatalf("wire Execute: %v", err)
	}
	erv, err := rig.mr.Encrypted()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rig.owner.Reveal(erv, ans.TopK)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	if want := oracleTopK(rig.oracle, []int{0, 1, 2}, 3); !sameTopK(got, want) {
		t.Fatalf("wire top-3 = %+v, oracle says %+v", got, want)
	}

	// Remote compaction: the owner adopts the epoch it reports.
	cepoch, err := client.Compact(ctx, "mut")
	if err != nil {
		t.Fatalf("client Compact: %v", err)
	}
	if cepoch != epoch+1 {
		t.Fatalf("Compact -> epoch %d, want %d", cepoch, epoch+1)
	}
	if err := rig.mr.Adopt(cepoch); err != nil {
		t.Fatal(err)
	}
	if dead := rig.mr.DeadRows(); dead != 0 {
		t.Fatalf("DeadRows after wire compaction = %d, want 0", dead)
	}
	rig.checkEquivalence(t, []int{0, 1}, 2)
}
