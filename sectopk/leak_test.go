package sectopk_test

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/sectopk"
)

// waitForGoroutines polls until the goroutine count drops to at most
// want, tolerating runtime stragglers for a bounded time.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines alive, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRigTeardownLeaksNoGoroutines constructs a full rig (owner, crypto
// cloud with background nonce pools, data cloud, executed session),
// tears it down, and checks every background goroutine exits — including
// after double-Close and error-path constructions.
func TestRigTeardownLeaksNoGoroutines(t *testing.T) {
	ctx := context.Background()
	baseline := runtime.NumGoroutine()

	for round := 0; round < 2; round++ {
		owner, err := sectopk.NewOwner(testOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		er, err := owner.Encrypt(demoRelation())
		if err != nil {
			t.Fatal(err)
		}
		cc := sectopk.NewCryptoCloud(testOpts()...)
		if err := cc.Register("demo", owner.Keys()); err != nil {
			t.Fatal(err)
		}
		dc := sectopk.NewDataCloud(testOpts()...)
		if err := dc.ConnectLocal(ctx, cc); err != nil {
			t.Fatal(err)
		}
		if err := dc.Host(ctx, "demo", er); err != nil {
			t.Fatal(err)
		}

		// Error paths must not leak the clients/pools they built.
		if err := dc.Host(ctx, "demo", er); err == nil {
			t.Fatal("duplicate Host accepted")
		}
		if err := dc.Host(ctx, "ghost", er); err == nil {
			t.Fatal("unregistered Host accepted")
		}

		tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dc.NewSession("demo", tk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Execute(ctx); err != nil {
			t.Fatal(err)
		}

		// Tear down; double-Close must be safe.
		dc.Close()
		dc.Close()
		cc.Close()
		cc.Close()
		waitForGoroutines(t, baseline)
	}
}

// TestServeTeardownLeaksNoGoroutines checks the TCP serving path: when
// the serve context is canceled, the accept loop and every per-connection
// goroutine exit.
func TestServeTeardownLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx := context.Background()
	owner, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(testOpts()...)
	if err := cc.Register("demo", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	serveDone := make(chan error, 1)
	go func() { serveDone <- cc.Serve(serveCtx, l) }()

	dc := sectopk.NewDataCloud(testOpts()...)
	if err := dc.Dial(ctx, l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		t.Fatal(err)
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewSession("demo", tk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(ctx); err != nil {
		t.Fatal(err)
	}

	dc.Close()
	stopServe()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	cc.Close()
	waitForGoroutines(t, baseline)
}
