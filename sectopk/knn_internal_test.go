package sectopk

import (
	"errors"
	"testing"
)

// TestValidateKNNPoint pins the coordinate-bound check shared by token
// issue and the execution path, including the wide-bits edge where a
// naive 1<<bits shift would overflow int64 and reject everything.
func TestValidateKNNPoint(t *testing.T) {
	if err := validateKNNPoint([]int64{0, 7}, 3); err != nil {
		t.Fatalf("in-range point rejected: %v", err)
	}
	if err := validateKNNPoint([]int64{8}, 3); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("out-of-range point: err = %v, want ErrInvalidToken", err)
	}
	if err := validateKNNPoint([]int64{-1}, 3); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("negative coordinate: err = %v, want ErrInvalidToken", err)
	}
	// bits >= 63 admits every non-negative int64 instead of overflowing
	// the bound into rejection of all inputs.
	for _, bits := range []int{63, 64, 100} {
		if err := validateKNNPoint([]int64{1 << 62}, bits); err != nil {
			t.Fatalf("bits=%d rejected a valid wide coordinate: %v", bits, err)
		}
		if err := validateKNNPoint([]int64{-1}, bits); !errors.Is(err, ErrInvalidToken) {
			t.Fatalf("bits=%d accepted a negative coordinate: %v", bits, err)
		}
	}
}
