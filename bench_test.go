// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure (DESIGN.md section 3 maps each id to its
// workload). Each iteration runs the corresponding bench.Registry
// experiment end to end over the real two-party protocols at the scaled
// default configuration; per-iteration metrics are reported through
// b.ReportMetric so `go test -bench=.` output doubles as the measured
// series for EXPERIMENTS.md.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/bench"
)

var (
	rigOnce sync.Once
	rig     *bench.Rig
	rigErr  error
)

// sharedRig reuses one keypair/cloud pair across all benchmarks; key
// generation would otherwise dominate every measurement.
func sharedRig(b *testing.B) *bench.Rig {
	b.Helper()
	rigOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.Rows = 60
		cfg.MaxDepth = 4
		rig, rigErr = bench.NewRig(cfg)
	})
	if rigErr != nil {
		b.Fatalf("rig: %v", rigErr)
	}
	return rig
}

func runExperiment(b *testing.B, id string) {
	r := sharedRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := bench.Run(r, id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(reports) == 0 {
			b.Fatalf("%s produced no reports", id)
		}
	}
}

// BenchmarkFig7_EHLConstruction regenerates Figure 7 (EHL vs EHL+
// construction time and size sweep).
func BenchmarkFig7_EHLConstruction(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_DatasetEncryption regenerates Figure 8 (relation
// encryption time/size on the four evaluation datasets).
func BenchmarkFig8_DatasetEncryption(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_QryF regenerates Figure 9 (Qry_F time per depth varying k
// and m).
func BenchmarkFig9_QryF(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10_QryE regenerates Figure 10 (Qry_E sweeps).
func BenchmarkFig10_QryE(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11_QryBa regenerates Figure 11 (Qry_Ba sweeps incl. the
// batching parameter p).
func BenchmarkFig11_QryBa(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12_Comparison regenerates Figure 12 (the three engines side
// by side).
func BenchmarkFig12_Comparison(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable3_Bandwidth regenerates Table 3 (communication bandwidth
// and modeled 50 Mbps latency).
func BenchmarkTable3_Bandwidth(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkFig13_Bandwidth regenerates Figure 13 (bandwidth per depth vs
// m; total bandwidth vs k).
func BenchmarkFig13_Bandwidth(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkKNNComparison regenerates the Section 11.3 comparison against
// the secure-kNN baseline.
func BenchmarkKNNComparison(b *testing.B) { runExperiment(b, "knn") }

// BenchmarkFig14_Join regenerates Figure 14 (top-k join time vs combined
// attributes).
func BenchmarkFig14_Join(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation_DesignChoices runs the halting-policy, ranking
// strategy, and EHL-structure ablations from DESIGN.md.
func BenchmarkAblation_DesignChoices(b *testing.B) { runExperiment(b, "ablation") }
