// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure (DESIGN.md section 3 maps each id to its
// workload). Each iteration runs the corresponding bench.Registry
// experiment end to end over the real two-party protocols at the scaled
// default configuration; per-iteration metrics are reported through
// b.ReportMetric so `go test -bench=.` output doubles as the measured
// series for EXPERIMENTS.md.
package repro_test

import (
	"context"
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/transport"
)

var (
	rigOnce sync.Once
	rig     *bench.Rig
	rigErr  error
)

// sharedRig reuses one keypair/cloud pair across all benchmarks; key
// generation would otherwise dominate every measurement.
func sharedRig(b *testing.B) *bench.Rig {
	b.Helper()
	rigOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.Rows = 60
		cfg.MaxDepth = 4
		rig, rigErr = bench.NewRig(cfg)
	})
	if rigErr != nil {
		b.Fatalf("rig: %v", rigErr)
	}
	return rig
}

func runExperiment(b *testing.B, id string) {
	r := sharedRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := bench.Run(r, id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(reports) == 0 {
			b.Fatalf("%s produced no reports", id)
		}
	}
}

// BenchmarkFig7_EHLConstruction regenerates Figure 7 (EHL vs EHL+
// construction time and size sweep).
func BenchmarkFig7_EHLConstruction(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_DatasetEncryption regenerates Figure 8 (relation
// encryption time/size on the four evaluation datasets).
func BenchmarkFig8_DatasetEncryption(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_QryF regenerates Figure 9 (Qry_F time per depth varying k
// and m).
func BenchmarkFig9_QryF(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10_QryE regenerates Figure 10 (Qry_E sweeps).
func BenchmarkFig10_QryE(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11_QryBa regenerates Figure 11 (Qry_Ba sweeps incl. the
// batching parameter p).
func BenchmarkFig11_QryBa(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12_Comparison regenerates Figure 12 (the three engines side
// by side).
func BenchmarkFig12_Comparison(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable3_Bandwidth regenerates Table 3 (communication bandwidth
// and modeled 50 Mbps latency).
func BenchmarkTable3_Bandwidth(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkFig13_Bandwidth regenerates Figure 13 (bandwidth per depth vs
// m; total bandwidth vs k).
func BenchmarkFig13_Bandwidth(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkKNNComparison regenerates the Section 11.3 comparison against
// the secure-kNN baseline.
func BenchmarkKNNComparison(b *testing.B) { runExperiment(b, "knn") }

// BenchmarkFig14_Join regenerates Figure 14 (top-k join time vs combined
// attributes).
func BenchmarkFig14_Join(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation_DesignChoices runs the halting-policy, ranking
// strategy, and EHL-structure ablations.
func BenchmarkAblation_DesignChoices(b *testing.B) { runExperiment(b, "ablation") }

var (
	benchKeyOnce sync.Once
	benchKey     *paillier.PrivateKey
	benchKeyErr  error
)

func sharedKey(b *testing.B) *paillier.PrivateKey {
	b.Helper()
	benchKeyOnce.Do(func() {
		benchKey, benchKeyErr = paillier.GenerateKey(rand.Reader, 512)
	})
	if benchKeyErr != nil {
		b.Fatalf("key: %v", benchKeyErr)
	}
	return benchKey
}

// BenchmarkBatchEncrypt measures paillier.EncryptBatch throughput across
// the execution and precomputation axes: the spec path serial
// (Parallelism 1) and worker-pooled, the key holder's CRT subgroup
// sampling, the opt-in short-exponent fast-nonce table, and the
// background nonce pool. The serial spec/crt/fast trio is the per-nonce
// cost comparison the precomputation layer is built around.
func BenchmarkBatchEncrypt(b *testing.B) {
	sk := sharedKey(b)
	pk := &sk.PublicKey
	const batch = 64
	ms := make([]*big.Int, batch)
	for i := range ms {
		ms[i] = big.NewInt(int64(i * 7))
	}
	run := func(name string, enc paillier.Encryptor, par int) {
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(batch), "cts/op")
			for i := 0; i < b.N; i++ {
				if _, err := paillier.EncryptBatch(enc, ms, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("serial", pk, 1)
	run("crt", sk.CRTEncryptor(), 1)
	fast, err := paillier.NewFastEncryptor(pk, 0)
	if err != nil {
		b.Fatal(err)
	}
	run("fast", fast, 1)
	run("parallel", pk, 0)
	pool := paillier.NewNoncePool(pk, 2, 4*batch)
	defer pool.Close()
	run("parallel-pooled", pool, 0)
}

// BenchmarkSecQueryParallel runs the same SecQuery end to end with every
// layer at Parallelism 1 (the exact pre-parallel serial path) and at
// Parallelism 0 (all cores, nonce pools on), sharing one key pair so only
// the execution substrate differs.
func BenchmarkSecQueryParallel(b *testing.B) {
	keys, err := cloud.KeyMaterialFromPaillier(sharedKey(b))
	if err != nil {
		b.Fatal(err)
	}
	rel, err := dataset.Generate(dataset.Spec{
		Name: "bench", N: 24, M: 3, MaxScore: 200,
		Shape: dataset.ShapeGaussian, Correlation: 0.8,
	}, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 0} {
		name := "serial"
		if par == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			scheme, err := core.NewSchemeFromKeys(core.Params{
				KeyBits: 512, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3},
				MaxScoreBits: 20, Parallelism: par,
			}, keys)
			if err != nil {
				b.Fatal(err)
			}
			er, err := scheme.EncryptRelation(rel)
			if err != nil {
				b.Fatal(err)
			}
			server, err := cloud.NewServer(keys, nil, cloud.WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()
			client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()),
				scheme.PublicKey(), nil, cloud.WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			tk, err := scheme.Token(er, []int{0, 1, 2}, nil, 3)
			if err != nil {
				b.Fatal(err)
			}
			engine, err := core.NewEngine(client, er)
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Mode: core.QryE, Halt: core.HaltStrict, MaxDepth: 4, Parallelism: par}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.SecQuery(context.Background(), tk, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
