// Command sectopk-node runs the paper's deployment roles as separate
// processes (Section 3.2's architecture), using files for the artifacts a
// real deployment would move between parties:
//
//	# Data owner: generate keys, encrypt a dataset, issue a token.
//	sectopk-node owner -dir ./deploy -dataset insurance -rows 40 \
//	    -attrs 0,1,2 -k 3
//
//	# Crypto cloud S2: serve the secret-key operations over TCP.
//	sectopk-node s2 -dir ./deploy -listen 127.0.0.1:9042
//
//	# Data cloud S1: load the encrypted relation + token, run SecQuery
//	# against S2, store the encrypted result.
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 -mode e
//
//	# Client: decrypt the result with the owner's keys.
//	sectopk-node reveal -dir ./deploy
//
// The owner's key file never travels to S1; the encrypted relation never
// travels to S2.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/secio"
	"repro/internal/transport"
)

const (
	s2KeysFile   = "s2.keys"      // decryption keys -> crypto cloud only
	pubKeyFile   = "public.key"   // public modulus -> data cloud
	ownerFile    = "owner.bundle" // full scheme state -> stays with owner
	relationFile = "relation.er"  // encrypted relation -> data cloud
	tokenFile    = "query.tk"     // query trapdoor -> data cloud
	resultFile   = "result.items" // encrypted result -> back to client
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "owner":
		err = runOwner(os.Args[2:])
	case "s2":
		err = runS2(os.Args[2:])
	case "s1":
		err = runS1(os.Args[2:])
	case "reveal":
		err = runReveal(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-node %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sectopk-node {owner|s2|s1|reveal} [flags]")
	os.Exit(2)
}

func runOwner(args []string) error {
	fs := flag.NewFlagSet("owner", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	name := fs.String("dataset", "insurance", "dataset spec (insurance|diabetes|PAMAP|synthetic)")
	rows := fs.Int("rows", 40, "dataset rows")
	seed := fs.Int64("seed", 1, "dataset seed")
	keyBits := fs.Int("keybits", 256, "Paillier modulus bits")
	attrsFlag := fs.String("attrs", "0,1,2", "queried attributes (comma separated)")
	k := fs.Int("k", 3, "top-k")
	par := fs.Int("parallelism", 0, "encryption worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec dataset.Spec
	switch *name {
	case "insurance":
		spec = dataset.Insurance()
	case "diabetes":
		spec = dataset.Diabetes()
	case "PAMAP":
		spec = dataset.PAMAP()
	case "synthetic":
		spec = dataset.Synthetic()
	default:
		return fmt.Errorf("unknown dataset %q", *name)
	}
	rel, err := dataset.Generate(spec.WithN(*rows), *seed)
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(core.Params{
		KeyBits: *keyBits, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20,
		Parallelism: *par, FastNonce: *fastNonce,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	er, err := scheme.EncryptRelation(rel)
	if err != nil {
		return err
	}
	fmt.Printf("encrypted %s (%dx%d) in %s\n", rel.Name, rel.N(), rel.M(), time.Since(start).Round(time.Millisecond))
	if err := secio.SaveKeyMaterial(filepath.Join(*dir, s2KeysFile), scheme.KeyMaterial()); err != nil {
		return err
	}
	if err := secio.SavePublicKey(filepath.Join(*dir, pubKeyFile), scheme.PublicKey()); err != nil {
		return err
	}
	if err := secio.SaveOwnerBundle(filepath.Join(*dir, ownerFile), scheme); err != nil {
		return err
	}
	if err := secio.SaveRelation(filepath.Join(*dir, relationFile), er); err != nil {
		return err
	}
	attrs, err := parseInts(*attrsFlag)
	if err != nil {
		return err
	}
	tk, err := scheme.Token(er, attrs, nil, *k)
	if err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(*dir, tokenFile))
	if err != nil {
		return err
	}
	if err := secio.WriteToken(tf, tk); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s, %s, %s, %s, %s under %s\n",
		s2KeysFile, pubKeyFile, ownerFile, relationFile, tokenFile, *dir)
	return nil
}

func runS2(args []string) error {
	fs := flag.NewFlagSet("s2", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	listen := fs.String("listen", "127.0.0.1:9042", "listen address")
	par := fs.Int("parallelism", 0, "handler worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	keys, err := secio.LoadKeyMaterial(filepath.Join(*dir, s2KeysFile))
	if err != nil {
		return err
	}
	server, err := cloud.NewServer(keys, cloud.NewLedger(),
		cloud.WithParallelism(*par), cloud.WithFastNonce(*fastNonce))
	if err != nil {
		return err
	}
	defer server.Close()
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("crypto cloud S2 serving on %s (ctrl-c to stop)\n", l.Addr())
	return transport.Serve(l, server)
}

func runS1(args []string) error {
	fs := flag.NewFlagSet("s1", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	connect := fs.String("connect", "127.0.0.1:9042", "S2 address")
	mode := fs.String("mode", "e", "query mode: f|e|ba")
	strict := fs.Bool("strict", true, "use strict NRA halting")
	par := fs.Int("parallelism", 0, "S1 worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	er, err := secio.LoadRelation(filepath.Join(*dir, relationFile))
	if err != nil {
		return err
	}
	tf, err := os.Open(filepath.Join(*dir, tokenFile))
	if err != nil {
		return err
	}
	tk, err := secio.ReadToken(tf)
	tf.Close()
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		return fmt.Errorf("dialing S2: %w", err)
	}
	stats := transport.NewStats()
	caller := transport.NewNetCaller(conn, stats)
	defer caller.Close()
	// S1 holds only the public key, provisioned by the owner.
	pk, err := secio.LoadPublicKey(filepath.Join(*dir, pubKeyFile))
	if err != nil {
		return err
	}
	client, err := cloud.NewClient(caller, pk, cloud.NewLedger(),
		cloud.WithParallelism(*par), cloud.WithFastNonce(*fastNonce))
	if err != nil {
		return err
	}
	defer client.Close()
	engine, err := core.NewEngine(client, er)
	if err != nil {
		return err
	}
	opts := core.Options{Halt: core.HaltPaper, Parallelism: *par}
	if *strict {
		opts.Halt = core.HaltStrict
	}
	switch *mode {
	case "f":
		opts.Mode = core.QryF
	case "e":
		opts.Mode = core.QryE
	case "ba":
		opts.Mode = core.QryBa
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	start := time.Now()
	res, err := engine.SecQuery(tk, opts)
	if err != nil {
		return err
	}
	fmt.Printf("query done: depth=%d halted=%v elapsed=%s rounds=%d bytes=%d\n",
		res.Depth, res.Halted, time.Since(start).Round(time.Millisecond), stats.Rounds(), stats.Bytes())
	rf, err := os.Create(filepath.Join(*dir, resultFile))
	if err != nil {
		return err
	}
	if err := secio.WriteItems(rf, res.Items); err != nil {
		rf.Close()
		return err
	}
	return rf.Close()
}

func runReveal(args []string) error {
	fs := flag.NewFlagSet("reveal", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := secio.LoadOwnerBundle(filepath.Join(*dir, ownerFile))
	if err != nil {
		return err
	}
	er, err := secio.LoadRelation(filepath.Join(*dir, relationFile))
	if err != nil {
		return err
	}
	rf, err := os.Open(filepath.Join(*dir, resultFile))
	if err != nil {
		return err
	}
	items, err := secio.ReadItems(rf)
	rf.Close()
	if err != nil {
		return err
	}
	rev, err := scheme.NewRevealer(er.N)
	if err != nil {
		return err
	}
	revealed, err := rev.RevealTopK(items)
	if err != nil {
		return err
	}
	for rank, item := range revealed {
		fmt.Printf("top-%d: object %d, score %d\n", rank+1, item.Obj, item.Worst)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing attribute list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
