// Command sectopk-node runs the paper's deployment roles as separate
// processes (Section 3.2's architecture) on the public sectopk API,
// using files for the artifacts a real deployment would move between
// parties:
//
//	# Data owner: generate keys, encrypt datasets, issue tokens. The
//	# -workloads flag selects which query workloads to provision
//	# (topk, join, knn — comma separated).
//	sectopk-node owner -dir ./deploy -dataset insurance -rows 40 \
//	    -attrs 0,1,2 -k 3 -workloads topk,join,knn
//
//	# Crypto cloud S2: serve the secret-key operations over TCP.
//	sectopk-node s2 -dir ./deploy -listen 127.0.0.1:9042 \
//	    -join-relation join -knn-relation knn
//
//	# Data cloud S1, one-shot mode: load the encrypted relation +
//	# token, run a query session against S2, store the encrypted
//	# result.
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 -mode e
//
//	# Data cloud S1, server mode: host every provisioned workload and
//	# serve remote queriers on the client wire protocol. -probe-listen
//	# adds /healthz and /readyz for orchestration; -drain-timeout makes
//	# shutdown graceful (in-flight queries finish, new ones shed).
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 \
//	    -join-relation join -knn-relation knn \
//	    -client-listen 127.0.0.1:9142 \
//	    -probe-listen 127.0.0.1:9143 -drain-timeout 30s
//
//	# Querier: dial the data cloud's client listener, submit the stored
//	# token of any workload, store the encrypted answer.
//	sectopk-node query -dir ./deploy -connect 127.0.0.1:9142 -workload topk
//	sectopk-node query -dir ./deploy -connect 127.0.0.1:9142 -workload join
//	sectopk-node query -dir ./deploy -connect 127.0.0.1:9142 -workload knn
//
//	# Client: decrypt a stored answer with the owner's keys.
//	sectopk-node reveal -dir ./deploy -workload topk
//
//	# Owner: mutate the live relation without re-encrypting it. Each
//	# flag's mutation becomes one encrypted delta shipped to S1 over the
//	# client wire (deletes, then updates, then inserts), -compact folds
//	# the accumulated tombstones, and the owner's mirror + the hosted
//	# bundle are re-saved at the new epoch so query/reveal keep working.
//	sectopk-node apply -dir ./deploy -connect 127.0.0.1:9142 \
//	    -delete 0,4 -update "2=8,8,8" -insert "3,5,7;2,9,1" -compact
//
//	# Cluster: the owner cuts per-member shard subsets (-shards 4 -nodes 2
//	# writes relation.node{0,1}-of-2.er), each member hosts its subset and
//	# serves the cluster plane, and a front door assembles the placement
//	# and serves queriers over the fleet. Answers are revealed-identical
//	# to a single node hosting everything.
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 \
//	    -subset relation.node0-of-2.er -member-id m0 \
//	    -cluster-listen 127.0.0.1:9242 -probe-listen 127.0.0.1:9243
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 \
//	    -subset relation.node1-of-2.er -member-id m1 \
//	    -cluster-listen 127.0.0.1:9244 -probe-listen 127.0.0.1:9245
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 \
//	    -cluster-nodes 127.0.0.1:9242,127.0.0.1:9244 \
//	    -client-listen 127.0.0.1:9142 -probe-listen 127.0.0.1:9143
//
// The owner's key files never travel to S1; the encrypted relations
// never travel to S2; the querier holds only tokens and encrypted
// answers. All serving roles honor SIGINT/SIGTERM by canceling the
// serving/query context, which stops a query within one protocol round.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/sectopk"
)

const (
	s2KeysFile     = "s2.keys"           // decryption keys -> crypto cloud only (top-k + kNN)
	joinKeysFile   = "s2-join.keys"      // join decryption keys -> crypto cloud only
	ownerFile      = "owner.bundle"      // full scheme state -> stays with owner
	joinOwnerFile  = "join-owner.bundle" // join scheme state -> stays with owner
	relationFile   = "relation.er"       // encrypted relation (+ public key) -> data cloud
	mirrorFile     = "relation.mr"       // owner's mutable mirror (plaintext + shadow) -> stays with owner
	join1File      = "join1.er"          // encrypted join relation 1 -> data cloud
	join2File      = "join2.er"          // encrypted join relation 2 -> data cloud
	knnFile        = "knn.er"            // encrypted kNN record store -> data cloud
	tokenFile      = "query.tk"          // top-k trapdoor -> querier
	joinTokenFile  = "join.tk"           // join trapdoor -> querier
	knnTokenFile   = "knn.tk"            // kNN trapdoor -> querier
	resultFile     = "result.items"      // encrypted top-k result -> back to client
	joinResultFile = "join-result.items" // encrypted join result -> back to client
	knnResultFile  = "knn-result.items"  // encrypted kNN result -> back to client
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "owner":
		err = runOwner(os.Args[2:])
	case "s2":
		err = runS2(ctx, os.Args[2:])
	case "s1":
		err = runS1(ctx, os.Args[2:])
	case "query":
		err = runQuery(ctx, os.Args[2:])
	case "apply":
		err = runApply(ctx, os.Args[2:])
	case "reveal":
		err = runReveal(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-node %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sectopk-node {owner|s2|s1|query|apply|reveal} [flags]")
	os.Exit(2)
}

// commonOpts maps shared flags to facade options.
func commonOpts(par int, fastNonce bool) []sectopk.Option {
	return []sectopk.Option{
		sectopk.WithParallelism(par),
		sectopk.WithFastNonce(fastNonce),
	}
}

// parseWorkloads splits and validates the -workloads flag.
func parseWorkloads(s string) (map[string]bool, error) {
	out := map[string]bool{}
	for _, w := range strings.Split(s, ",") {
		switch w = strings.TrimSpace(w); w {
		case "topk", "join", "knn":
			out[w] = true
		case "":
		default:
			return nil, fmt.Errorf("unknown workload %q (want topk, join, or knn)", w)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no workloads selected")
	}
	return out, nil
}

func runOwner(args []string) error {
	fs := flag.NewFlagSet("owner", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	name := fs.String("dataset", "insurance", "dataset spec (insurance|diabetes|PAMAP|synthetic)")
	rows := fs.Int("rows", 40, "dataset rows")
	seed := fs.Int64("seed", 1, "dataset seed")
	keyBits := fs.Int("keybits", 256, "Paillier modulus bits")
	attrsFlag := fs.String("attrs", "0,1,2", "queried attributes (comma separated)")
	k := fs.Int("k", 3, "top-k")
	par := fs.Int("parallelism", 0, "encryption worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	shards := fs.Int("shards", 1, "partition the relation into p shards at encryption time (queries run shards concurrently)")
	nodesFlag := fs.String("nodes", "", "also cut cluster shard subsets for these fleet sizes (comma list, e.g. 1,2): writes relation.node<i>-of-<n>.er per member")
	workloadsFlag := fs.String("workloads", "topk", "workloads to provision: comma list of topk,join,knn")
	joinRows := fs.Int("join-rows", 8, "rows per join relation (the oblivious join costs O(n1*n2))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workloads, err := parseWorkloads(*workloadsFlag)
	if err != nil {
		return err
	}
	rel, err := sectopk.GenerateDataset(*name, *rows, *seed)
	if err != nil {
		return err
	}
	opts := append(commonOpts(*par, *fastNonce),
		sectopk.WithKeyBits(*keyBits),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
		sectopk.WithShards(*shards),
	)
	owner, err := sectopk.NewOwner(opts...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	attrs, err := parseInts(*attrsFlag)
	if err != nil {
		return err
	}

	if workloads["topk"] {
		start := time.Now()
		er, err := owner.Encrypt(rel)
		if err != nil {
			return err
		}
		fmt.Printf("encrypted %s (%dx%d, %d shard(s)) in %s\n", er.Name(), er.Rows(), er.Attributes(),
			er.Shards(), time.Since(start).Round(time.Millisecond))
		if err := er.Save(filepath.Join(*dir, relationFile)); err != nil {
			return err
		}
		tk, err := owner.Token(er, sectopk.Query{Attrs: attrs, K: *k})
		if err != nil {
			return err
		}
		if err := tk.Save(filepath.Join(*dir, tokenFile)); err != nil {
			return err
		}
		// The mutable mirror is what lets the owner produce encrypted
		// deltas later (sectopk-node apply) without re-encrypting.
		mr, err := owner.NewMutable(rel, er)
		if err != nil {
			return err
		}
		if err := mr.Save(filepath.Join(*dir, mirrorFile)); err != nil {
			return err
		}
		// Cluster provisioning: for each requested fleet size n, deal the
		// relation's shards round-robin into n subset files — member i of
		// an n-node fleet hosts relation.node<i>-of-<n>.er. The subsets
		// tile the relation exactly, which the front door verifies when it
		// assembles the placement.
		if *nodesFlag != "" {
			sizes, err := parseInts(*nodesFlag)
			if err != nil {
				return err
			}
			for _, n := range sizes {
				if n < 1 || n > er.Shards() {
					return fmt.Errorf("-nodes %d: fleet size must be in 1..%d (the shard count)", n, er.Shards())
				}
				for i := 0; i < n; i++ {
					var indices []int
					for j := i; j < er.Shards(); j += n {
						indices = append(indices, j)
					}
					sub, err := er.Subset(indices...)
					if err != nil {
						return err
					}
					name := fmt.Sprintf("relation.node%d-of-%d.er", i, n)
					if err := sub.Save(filepath.Join(*dir, name)); err != nil {
						return err
					}
					fmt.Printf("cut %s: shards %v of %d\n", name, indices, er.Shards())
				}
			}
		}
	}

	if workloads["knn"] {
		ker, err := owner.EncryptKNN(rel)
		if err != nil {
			return err
		}
		if err := ker.Save(filepath.Join(*dir, knnFile)); err != nil {
			return err
		}
		// Demo query: the k records nearest to the first record.
		point := append([]int64(nil), rel.Rows[0]...)
		ktk, err := owner.KNNToken(ker, sectopk.KNNQuery{Point: point, K: *k})
		if err != nil {
			return err
		}
		if err := ktk.Save(filepath.Join(*dir, knnTokenFile)); err != nil {
			return err
		}
		fmt.Printf("encrypted kNN store %s (%dx%d), token asks the %d nearest to row 0\n",
			ker.Name(), ker.Rows(), ker.Attributes(), *k)
	}

	if workloads["join"] {
		if len(rel.Rows[0]) < 3 {
			return fmt.Errorf("join workload needs >= 3 attributes, dataset has %d", len(rel.Rows[0]))
		}
		n := *joinRows
		if n > len(rel.Rows) {
			n = len(rel.Rows)
		}
		// Two relations sharing join-attribute values: every r1 tuple has
		// at least its twin in r2, so the demo equi-join is never empty.
		r1 := &sectopk.Relation{Name: rel.Name + "-j1", Rows: rel.Rows[:n]}
		r2 := &sectopk.Relation{Name: rel.Name + "-j2", Rows: rel.Rows[:n]}
		jowner, err := sectopk.NewJoinOwner(opts...)
		if err != nil {
			return err
		}
		jr1, err := jowner.Encrypt(r1)
		if err != nil {
			return err
		}
		jr2, err := jowner.Encrypt(r2)
		if err != nil {
			return err
		}
		jq := sectopk.JoinQuery{
			JoinAttr1: 0, JoinAttr2: 0,
			ScoreAttr1: 1, ScoreAttr2: 2,
			Project1: []int{0}, Project2: []int{1},
			K: *k,
		}
		jtk, err := jowner.Token(jr1, jr2, jq)
		if err != nil {
			return err
		}
		if err := jowner.Keys().Save(filepath.Join(*dir, joinKeysFile)); err != nil {
			return err
		}
		if err := jowner.Save(filepath.Join(*dir, joinOwnerFile)); err != nil {
			return err
		}
		if err := jr1.Save(filepath.Join(*dir, join1File)); err != nil {
			return err
		}
		if err := jr2.Save(filepath.Join(*dir, join2File)); err != nil {
			return err
		}
		if err := jtk.Save(filepath.Join(*dir, joinTokenFile)); err != nil {
			return err
		}
		fmt.Printf("encrypted join pair %s/%s (%d rows each)\n", r1.Name, r2.Name, n)
	}

	if err := owner.Keys().Save(filepath.Join(*dir, s2KeysFile)); err != nil {
		return err
	}
	if err := owner.Save(filepath.Join(*dir, ownerFile)); err != nil {
		return err
	}
	fmt.Printf("wrote owner artifacts for %s under %s\n", strings.Join(sortedKeys(workloads), ","), *dir)
	return nil
}

func sortedKeys(m map[string]bool) []string {
	order := []string{"topk", "join", "knn"}
	out := make([]string, 0, len(m))
	for _, k := range order {
		if m[k] {
			out = append(out, k)
		}
	}
	return out
}

func runS2(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("s2", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	listen := fs.String("listen", "127.0.0.1:9042", "listen address")
	relation := fs.String("relation", "default", "relation ID to register the owner keys under")
	joinRelation := fs.String("join-relation", "", "also register the join keys under this relation ID")
	knnRelation := fs.String("knn-relation", "", "also register the owner keys under this relation ID for kNN queries")
	par := fs.Int("parallelism", 0, "handler worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	keys, err := sectopk.LoadKeys(filepath.Join(*dir, s2KeysFile))
	if err != nil {
		return err
	}
	cc := sectopk.NewCryptoCloud(commonOpts(*par, *fastNonce)...)
	defer cc.Close()
	if err := cc.Register(*relation, keys); err != nil {
		return err
	}
	if *knnRelation != "" {
		if err := cc.Register(*knnRelation, keys); err != nil {
			return err
		}
	}
	if *joinRelation != "" {
		jkeys, err := sectopk.LoadKeys(filepath.Join(*dir, joinKeysFile))
		if err != nil {
			return err
		}
		if err := cc.Register(*joinRelation, jkeys); err != nil {
			return err
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("crypto cloud S2 serving relations %v on %s (ctrl-c to stop)\n", cc.Relations(), l.Addr())
	if err := cc.Serve(ctx, l); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

func runS1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("s1", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	connect := fs.String("connect", "127.0.0.1:9042", "S2 address")
	relation := fs.String("relation", "default", "relation ID registered on S2")
	joinRelation := fs.String("join-relation", "", "host the join pair under this relation ID")
	knnRelation := fs.String("knn-relation", "", "host the kNN store under this relation ID")
	clientListen := fs.String("client-listen", "", "serve remote queriers on this address (long-running server mode)")
	clusterListen := fs.String("cluster-listen", "", "serve the cluster plane on this address (member mode; implies server mode)")
	clusterNodes := fs.String("cluster-nodes", "", "assemble a cluster front door over these member cluster addresses (comma separated)")
	subset := fs.String("subset", "", "host this shard subset file (relative to -dir) instead of the full relation (cluster member mode)")
	memberID := fs.String("member-id", "", "cluster member identity announced in Hellos and on /readyz")
	probeListen := fs.String("probe-listen", "", "serve /healthz, /readyz (JSON), and /metrics (Prometheus text) on this address")
	pprofListen := fs.String("pprof-listen", "", "serve net/http/pprof profiling endpoints on this address")
	sessionLimit := fs.Int("session-limit", 0, "bound concurrently executing requests; overflow sheds with a typed overloaded error (0 = GOMAXPROCS queueing gate for remote clients)")
	tenantLimits := fs.String("tenant-limits", "", "per-tenant QoS admission budgets: comma list of name=rate[:burst] (requests/s), e.g. 'alice=5:10,bob=1'; unlisted tenants stay unlimited")
	drain := fs.Duration("drain-timeout", 0, "graceful shutdown window: let in-flight queries finish this long before aborting (0 = abort immediately)")
	mode := fs.String("mode", "e", "query mode: f|e|ba (one-shot mode only)")
	strict := fs.Bool("strict", true, "use strict NRA halting (one-shot mode only)")
	par := fs.Int("parallelism", 0, "S1 worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	serverMode := *clientListen != "" || *clusterListen != "" || *clusterNodes != ""
	// The top-k relation is required in one-shot mode (it is the query
	// that runs); in server mode an owner may have provisioned only
	// join/knn workloads, so a missing relation file just skips hosting
	// it. A cluster member given -subset hosts that instead of the full
	// relation, and a front door (-cluster-nodes) hosts nothing locally —
	// its relations come from the member fleet.
	var er *sectopk.EncryptedRelation
	if *subset == "" && *clusterNodes == "" {
		var erErr error
		er, erErr = sectopk.LoadEncryptedRelation(filepath.Join(*dir, relationFile))
		if erErr != nil && (!serverMode || !os.IsNotExist(erErr)) {
			return erErr
		}
	}
	opts := commonOpts(*par, *fastNonce)
	if *memberID != "" {
		opts = append(opts, sectopk.WithMemberID(*memberID))
	}
	if *sessionLimit > 0 {
		opts = append(opts, sectopk.WithSessionLimit(*sessionLimit))
	}
	if *drain > 0 {
		opts = append(opts, sectopk.WithDrainTimeout(*drain))
	}
	if *tenantLimits != "" {
		limits, err := parseTenantLimits(*tenantLimits)
		if err != nil {
			return err
		}
		opts = append(opts, sectopk.WithTenantLimits(limits))
	}
	dc := sectopk.NewDataCloud(opts...)
	defer dc.Close()

	if *pprofListen != "" {
		pl, err := net.Listen("tcp", *pprofListen)
		if err != nil {
			return err
		}
		defer pl.Close()
		startPprof(pl)
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pl.Addr())
	}

	// Probes come up before the S2 dial: /healthz answers as soon as the
	// process lives, /readyz flips only once the handshakes are done and
	// the relations are hosted (and back off again while draining).
	var hosted atomic.Bool
	if *probeListen != "" {
		pl, err := net.Listen("tcp", *probeListen)
		if err != nil {
			return err
		}
		defer pl.Close()
		startProbes(pl, s1Ready(dc, &hosted, *relation))
		fmt.Printf("probes on http://%s/healthz and /readyz\n", pl.Addr())
	}

	// The self-healing transport rides out an S2 that is still starting
	// (or restarts later): dialing backs off under the default policy,
	// and every fresh link re-runs the handshakes before serving rounds.
	if err := dc.DialRetry(ctx, *connect); err != nil {
		return err
	}
	if *subset != "" {
		sub, err := sectopk.LoadShardSubset(filepath.Join(*dir, *subset))
		if err != nil {
			return err
		}
		if err := dc.HostShards(ctx, *relation, sub); err != nil {
			return err
		}
		fmt.Printf("hosting shard subset %v of %d for relation %s\n", sub.Indices(), sub.Total(), *relation)
	} else if er != nil {
		if err := dc.Host(ctx, *relation, er); err != nil {
			return err
		}
	}
	if *joinRelation != "" {
		jr1, err := sectopk.LoadEncryptedJoinRelation(filepath.Join(*dir, join1File))
		if err != nil {
			return err
		}
		jr2, err := sectopk.LoadEncryptedJoinRelation(filepath.Join(*dir, join2File))
		if err != nil {
			return err
		}
		if err := dc.HostJoin(ctx, *joinRelation, jr1, jr2); err != nil {
			return err
		}
	}
	if *knnRelation != "" {
		ker, err := sectopk.LoadEncryptedKNNRelation(filepath.Join(*dir, knnFile))
		if err != nil {
			return err
		}
		if err := dc.HostKNN(ctx, *knnRelation, ker); err != nil {
			return err
		}
	}
	// Front-door mode: dial the member fleet, assemble the placement, and
	// serve queriers over it. The members must be up and serving their
	// cluster planes before this node starts.
	if *clusterNodes != "" {
		addrs := splitList(*clusterNodes)
		if len(addrs) == 0 {
			return fmt.Errorf("-cluster-nodes lists no addresses")
		}
		if err := dc.HostCluster(ctx, addrs); err != nil {
			return err
		}
		fmt.Printf("front door over %d member(s), cluster relations %v\n", len(addrs), dc.ClusterRelations())
	}
	hosted.Store(len(dc.Hosted()) > 0)

	if serverMode {
		if len(dc.Hosted()) == 0 {
			return fmt.Errorf("nothing to host: no %s and no -subset/-cluster-nodes/-join-relation/-knn-relation given", relationFile)
		}
		// A member serves the cluster plane (which also answers the client
		// wire for its whole-relation workloads); a front door serves
		// queriers. Both listeners may run side by side.
		var (
			serves int
			errc   = make(chan error, 2)
		)
		if *clusterListen != "" {
			l, err := net.Listen("tcp", *clusterListen)
			if err != nil {
				return err
			}
			fmt.Printf("data cloud S1 member %q hosting %v, cluster plane on %s (ctrl-c to stop)\n",
				dc.MemberID(), dc.Hosted(), l.Addr())
			serves++
			go func() { errc <- dc.ServeCluster(ctx, l) }()
		}
		if *clientListen != "" {
			l, err := net.Listen("tcp", *clientListen)
			if err != nil {
				return err
			}
			fmt.Printf("data cloud S1 hosting %v, serving queriers on %s (ctrl-c to stop)\n", dc.Hosted(), l.Addr())
			serves++
			go func() { errc <- dc.ServeClients(ctx, l) }()
		}
		for i := 0; i < serves; i++ {
			if err := <-errc; err != nil && ctx.Err() == nil {
				return err
			}
		}
		return nil
	}

	// One-shot mode: run the stored top-k token in-process.
	tk, err := sectopk.LoadToken(filepath.Join(*dir, tokenFile))
	if err != nil {
		return err
	}
	qmode, halt, err := parseQueryOpts(*mode, *strict)
	if err != nil {
		return err
	}
	sess, err := dc.NewSession(*relation, tk, sectopk.WithMode(qmode), sectopk.WithHalting(halt))
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sess.Execute(ctx)
	if err != nil {
		return err
	}
	tr := sess.Traffic()
	fmt.Printf("query done: depth=%d halted=%v elapsed=%s rounds=%d bytes=%d\n",
		res.Depth, res.Halted, time.Since(start).Round(time.Millisecond), tr.Rounds, tr.Bytes)
	return res.Save(filepath.Join(*dir, resultFile))
}

// readyStatus is the structured /readyz body. State is "ready" (HTTP
// 200) or "not_ready" (503); Reason explains either way. Epoch is the
// named relation's current epoch (0 when none is hosted); Member and
// Shards identify a cluster member; Members lists a front door's fleet.
type readyStatus struct {
	State   string           `json:"state"`
	Reason  string           `json:"reason"`
	Epoch   uint64           `json:"epoch,omitempty"`
	Member  string           `json:"member,omitempty"`
	Shards  map[string][]int `json:"shards,omitempty"`
	Members []string         `json:"members,omitempty"`
}

// s1Ready is the readiness predicate behind /readyz: the S2 handshakes
// are done (the transport is connected), the relations are hosted, the
// data cloud is not draining for shutdown, and no shard handoff is
// mid-swap. A cluster member reports its identity and assigned shard
// set; a front door verifies every member still answers a cluster Hello
// before claiming ready. A ready top-k relation also reports its epoch,
// so an orchestrator (or a curious owner) can watch deltas land without
// issuing a query.
func s1Ready(dc *sectopk.DataCloud, hosted *atomic.Bool, relation string) func() readyStatus {
	return func() readyStatus {
		st := readyStatus{State: "not_ready", Member: dc.MemberID()}
		switch {
		case dc.Draining():
			st.Reason = "draining"
			return st
		case !dc.Connected():
			st.Reason = "not connected to S2"
			return st
		case dc.HandoffInFlight():
			st.Reason = "shard handoff in flight"
			return st
		case !hosted.Load():
			st.Reason = "relations not hosted"
			return st
		}
		if subs := dc.HostedShardSubsets(); len(subs) > 0 {
			st.Shards = subs
		}
		if nodes := dc.ClusterNodes(); len(nodes) > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := dc.ClusterReachable(ctx); err != nil {
				st.Reason = fmt.Sprintf("cluster member unreachable: %v", err)
				return st
			}
			sort.Strings(nodes)
			st.Members = nodes
		}
		if epoch, err := dc.Epoch(relation); err == nil {
			st.Epoch = epoch
		}
		st.State = "ready"
		st.Reason = "ready"
		return st
	}
}

// startProbes serves the operational endpoints on the listener until it
// closes: /healthz (liveness: the process is up), /readyz (readiness as
// a structured JSON body; HTTP 200 when ready, 503 otherwise), and
// /metrics (the process-wide telemetry registry in Prometheus text
// exposition format).
func startProbes(l net.Listener, ready func() readyStatus) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		st := ready()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if st.State != "ready" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.Encode(st)
	})
	mux.Handle("/metrics", telemetry.Default().Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
}

// startPprof serves the net/http/pprof profiling endpoints on the
// listener until it closes (on its own mux, so the probe plane never
// exposes profiling by accident).
func startPprof(l net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
}

// parseTenantLimits parses the -tenant-limits syntax: comma-separated
// name=rate[:burst] entries, rate in requests/second.
func parseTenantLimits(s string) (map[string]sectopk.Rate, error) {
	out := map[string]sectopk.Rate{}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tenant limit %q is not name=rate[:burst]", part)
		}
		rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("tenant %q: rate %q must be a positive number", name, rateStr)
		}
		r := sectopk.Rate{PerSecond: rate}
		if hasBurst {
			b, err := strconv.Atoi(strings.TrimSpace(burstStr))
			if err != nil || b <= 0 {
				return nil, fmt.Errorf("tenant %q: burst %q must be a positive integer", name, burstStr)
			}
			r.Burst = b
		}
		out[strings.TrimSpace(name)] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenant limits in %q", s)
	}
	return out, nil
}

// parseQueryOpts maps the shared -mode / -strict flags to query options.
func parseQueryOpts(mode string, strict bool) (sectopk.Mode, sectopk.Halting, error) {
	var qmode sectopk.Mode
	switch mode {
	case "f":
		qmode = sectopk.ModeFull
	case "e":
		qmode = sectopk.ModeEliminate
	case "ba":
		qmode = sectopk.ModeBatched
	default:
		return 0, 0, fmt.Errorf("unknown mode %q", mode)
	}
	halt := sectopk.HaltingPaper
	if strict {
		halt = sectopk.HaltingStrict
	}
	return qmode, halt, nil
}

// dialClient dials a data cloud client listener through the shared
// recovery stack: capped exponential backoff with jitter bounded by the
// wait window (the querier typically races the server's startup), and a
// client that keeps re-dialing and retrying shed/transport failures for
// the session. A protocol-version mismatch is final and surfaces
// immediately. Given a comma-separated list the dial fans across the
// nodes in order, splitting the wait window between them, and a fully
// failed fan surfaces the LAST node's error: in a half-up cluster the
// early entries fail with whatever transient state they were caught in,
// while the final attempt ran with the most time elapsed — that is the
// message that diagnoses what is still down.
func dialClient(ctx context.Context, addrs string, wait time.Duration, opts ...sectopk.Option) (*sectopk.Client, error) {
	list := splitList(addrs)
	if len(list) == 0 {
		return nil, fmt.Errorf("no data cloud address to dial")
	}
	per := wait / time.Duration(len(list))
	var lastErr error
	for _, addr := range list {
		client, err := sectopk.DialRetry(ctx, addr, append([]sectopk.Option{sectopk.WithRetry(sectopk.RetryPolicy{
			Initial:    50 * time.Millisecond,
			Max:        time.Second,
			MaxElapsed: per,
		})}, opts...)...)
		if err == nil {
			return client, nil
		}
		lastErr = fmt.Errorf("dialing %s: %w", addr, err)
	}
	return nil, lastErr
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	connect := fs.String("connect", "127.0.0.1:9142", "data cloud client-listen address(es), comma separated — first reachable wins")
	workload := fs.String("workload", "topk", "workload: topk|join|knn")
	relation := fs.String("relation", "", "relation ID (defaults to \"default\" for topk, the workload name otherwise)")
	mode := fs.String("mode", "e", "query mode: f|e|ba (topk only)")
	strict := fs.Bool("strict", true, "use strict NRA halting (topk only)")
	tenant := fs.String("tenant", "", "tenant to identify as in the Hello (QoS admission bucket; empty = default tenant)")
	wait := fs.Duration("wait", 15*time.Second, "how long to retry dialing the server")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rel := *relation
	if rel == "" {
		if *workload == "topk" {
			rel = "default"
		} else {
			rel = *workload
		}
	}
	var req sectopk.Request
	var out string
	switch *workload {
	case "topk":
		tk, err := sectopk.LoadToken(filepath.Join(*dir, tokenFile))
		if err != nil {
			return err
		}
		qmode, halt, err := parseQueryOpts(*mode, *strict)
		if err != nil {
			return err
		}
		req = sectopk.TopKRequest(rel, tk, sectopk.WithMode(qmode), sectopk.WithHalting(halt))
		out = resultFile
	case "join":
		tk, err := sectopk.LoadJoinToken(filepath.Join(*dir, joinTokenFile))
		if err != nil {
			return err
		}
		req = sectopk.JoinRequest(rel, tk)
		out = joinResultFile
	case "knn":
		tk, err := sectopk.LoadKNNToken(filepath.Join(*dir, knnTokenFile))
		if err != nil {
			return err
		}
		req = sectopk.KNNRequest(rel, tk)
		out = knnResultFile
	default:
		return fmt.Errorf("unknown workload %q (want topk, join, or knn)", *workload)
	}
	var dialOpts []sectopk.Option
	if *tenant != "" {
		dialOpts = append(dialOpts, sectopk.WithTenant(*tenant))
	}
	client, err := dialClient(ctx, *connect, *wait, dialOpts...)
	if err != nil {
		return err
	}
	defer client.Close()
	start := time.Now()
	ans, err := client.Execute(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("%s query done: elapsed=%s client-rounds=%d client-bytes=%d s2-calls=%d fan-out=%d epoch=%d\n",
		*workload, time.Since(start).Round(time.Millisecond), ans.Traffic.Rounds, ans.Traffic.Bytes,
		ans.Traffic.S2Calls, ans.Traffic.FanOut, ans.Traffic.Epoch)
	path := filepath.Join(*dir, out)
	switch *workload {
	case "topk":
		fmt.Printf("depth=%d halted=%v\n", ans.TopK.Depth, ans.TopK.Halted)
		return ans.TopK.Save(path)
	case "join":
		return ans.Join.Save(path)
	default:
		return ans.KNN.Save(path)
	}
}

// runApply is the owner's live-update loop: load the mutable mirror,
// turn the flags into encrypted deltas (deletes, then updates, then
// inserts — three independent mutations in a fixed order), ship each to
// the data cloud over the client wire, adopt the epochs the Applies
// report, and persist the advanced owner state. The mirror is re-saved
// after every landed delta, so a failure mid-sequence leaves the disk
// state consistent with the hosting (the unshipped mutations are simply
// not applied anywhere).
func runApply(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	connect := fs.String("connect", "127.0.0.1:9142", "data cloud client-listen address")
	relation := fs.String("relation", "default", "relation ID")
	insertFlag := fs.String("insert", "", "rows to insert: semicolon-separated comma-lists, e.g. '3,5,7;2,9,1'")
	deleteFlag := fs.String("delete", "", "global row ids to delete: comma list, e.g. '0,4'")
	updateFlag := fs.String("update", "", "rows to update: semicolon-separated id=comma-list, e.g. '2=8,8,8'")
	compact := fs.Bool("compact", false, "fold accumulated tombstones after the mutations land")
	wait := fs.Duration("wait", 15*time.Second, "how long to retry dialing the server")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *insertFlag == "" && *deleteFlag == "" && *updateFlag == "" && !*compact {
		return fmt.Errorf("nothing to do: give -insert, -delete, -update, or -compact")
	}
	owner, err := sectopk.LoadOwner(filepath.Join(*dir, ownerFile))
	if err != nil {
		return err
	}
	mr, err := owner.LoadMutable(filepath.Join(*dir, mirrorFile))
	if err != nil {
		return err
	}
	client, err := dialClient(ctx, *connect, *wait)
	if err != nil {
		return err
	}
	defer client.Close()

	mirrorPath := filepath.Join(*dir, mirrorFile)
	ship := func(d *sectopk.Delta, what string) error {
		epoch, err := client.Apply(ctx, *relation, d)
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		if err := mr.Adopt(epoch); err != nil {
			return err
		}
		ins, del := d.Rows()
		fmt.Printf("%s applied: +%d/-%d rows -> epoch %d\n", what, ins, del, epoch)
		return mr.Save(mirrorPath)
	}
	if *deleteFlag != "" {
		ids, err := parseInts(*deleteFlag)
		if err != nil {
			return err
		}
		d, err := mr.DeleteRows(ids)
		if err != nil {
			return err
		}
		if err := ship(d, "delete"); err != nil {
			return err
		}
	}
	if *updateFlag != "" {
		updates, err := parseUpdates(*updateFlag)
		if err != nil {
			return err
		}
		d, err := mr.UpdateScores(updates)
		if err != nil {
			return err
		}
		if err := ship(d, "update"); err != nil {
			return err
		}
	}
	if *insertFlag != "" {
		rows, err := parseRows(*insertFlag)
		if err != nil {
			return err
		}
		d, err := mr.InsertRows(rows)
		if err != nil {
			return err
		}
		if err := ship(d, "insert"); err != nil {
			return err
		}
	}
	if *compact {
		epoch, err := client.Compact(ctx, *relation)
		if err != nil {
			return err
		}
		if err := mr.Adopt(epoch); err != nil {
			return err
		}
		fmt.Printf("compacted -> epoch %d\n", epoch)
		if err := mr.Save(mirrorPath); err != nil {
			return err
		}
	}
	// Refresh the hosted bundle at the new epoch: reveal sizes its
	// revealer off this file, which must cover the grown id space.
	er, err := mr.Encrypted()
	if err != nil {
		return err
	}
	if err := er.Save(filepath.Join(*dir, relationFile)); err != nil {
		return err
	}
	fmt.Printf("relation %s now at epoch %d: %d live rows, %d awaiting compaction\n",
		*relation, mr.Epoch(), mr.LiveRows(), mr.DeadRows())
	return nil
}

// parseRows parses the -insert syntax: rows split by ';', attribute
// scores by ','.
func parseRows(s string) ([][]int64, error) {
	var out [][]int64
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		row, err := parseInt64s(part)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rows in %q", s)
	}
	return out, nil
}

// parseUpdates parses the -update syntax: 'id=scores' pairs split by
// ';', scores by ','.
func parseUpdates(s string) (map[int][]int64, error) {
	out := map[int][]int64{}
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		id, scores, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("update %q is not id=scores", part)
		}
		v, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("parsing update id %q: %w", id, err)
		}
		row, err := parseInt64s(scores)
		if err != nil {
			return nil, err
		}
		out[v] = row
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no updates in %q", s)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing score list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runReveal(args []string) error {
	fs := flag.NewFlagSet("reveal", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	workload := fs.String("workload", "topk", "workload: topk|join|knn")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *workload {
	case "topk":
		owner, err := sectopk.LoadOwner(filepath.Join(*dir, ownerFile))
		if err != nil {
			return err
		}
		er, err := sectopk.LoadEncryptedRelation(filepath.Join(*dir, relationFile))
		if err != nil {
			return err
		}
		res, err := sectopk.LoadEncryptedResult(filepath.Join(*dir, resultFile))
		if err != nil {
			return err
		}
		revealed, err := owner.Reveal(er, res)
		if err != nil {
			return err
		}
		for rank, item := range revealed {
			fmt.Printf("top-%d: object %d, score %d\n", rank+1, item.Object, item.Score)
		}
	case "join":
		jowner, err := sectopk.LoadJoinOwner(filepath.Join(*dir, joinOwnerFile))
		if err != nil {
			return err
		}
		res, err := sectopk.LoadEncryptedJoinResult(filepath.Join(*dir, joinResultFile))
		if err != nil {
			return err
		}
		revealed, err := jowner.Reveal(res)
		if err != nil {
			return err
		}
		for rank, tup := range revealed {
			fmt.Printf("join-%d: score %d, attrs %v\n", rank+1, tup.Score, tup.Attrs)
		}
	case "knn":
		owner, err := sectopk.LoadOwner(filepath.Join(*dir, ownerFile))
		if err != nil {
			return err
		}
		ker, err := sectopk.LoadEncryptedKNNRelation(filepath.Join(*dir, knnFile))
		if err != nil {
			return err
		}
		res, err := sectopk.LoadEncryptedKNNResult(filepath.Join(*dir, knnResultFile))
		if err != nil {
			return err
		}
		revealed, err := owner.RevealKNN(ker, res)
		if err != nil {
			return err
		}
		for rank, item := range revealed {
			fmt.Printf("nn-%d: object %d, distance %d\n", rank+1, item.Object, item.Distance)
		}
	default:
		return fmt.Errorf("unknown workload %q (want topk, join, or knn)", *workload)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing attribute list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
