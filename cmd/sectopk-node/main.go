// Command sectopk-node runs the paper's deployment roles as separate
// processes (Section 3.2's architecture) on the public sectopk API,
// using files for the artifacts a real deployment would move between
// parties:
//
//	# Data owner: generate keys, encrypt a dataset, issue a token.
//	sectopk-node owner -dir ./deploy -dataset insurance -rows 40 \
//	    -attrs 0,1,2 -k 3
//
//	# Crypto cloud S2: serve the secret-key operations over TCP.
//	sectopk-node s2 -dir ./deploy -listen 127.0.0.1:9042
//
//	# Data cloud S1: load the encrypted relation + token, run a query
//	# session against S2, store the encrypted result.
//	sectopk-node s1 -dir ./deploy -connect 127.0.0.1:9042 -mode e
//
//	# Client: decrypt the result with the owner's keys.
//	sectopk-node reveal -dir ./deploy
//
// The owner's key file never travels to S1; the encrypted relation never
// travels to S2. Both cloud roles honor SIGINT/SIGTERM by canceling the
// serving/query context, which stops a query within one protocol round.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/sectopk"
)

const (
	s2KeysFile   = "s2.keys"      // decryption keys -> crypto cloud only
	ownerFile    = "owner.bundle" // full scheme state -> stays with owner
	relationFile = "relation.er"  // encrypted relation (+ public key) -> data cloud
	tokenFile    = "query.tk"     // query trapdoor -> data cloud
	resultFile   = "result.items" // encrypted result -> back to client
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "owner":
		err = runOwner(os.Args[2:])
	case "s2":
		err = runS2(ctx, os.Args[2:])
	case "s1":
		err = runS1(ctx, os.Args[2:])
	case "reveal":
		err = runReveal(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-node %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sectopk-node {owner|s2|s1|reveal} [flags]")
	os.Exit(2)
}

// commonOpts maps shared flags to facade options.
func commonOpts(par int, fastNonce bool) []sectopk.Option {
	return []sectopk.Option{
		sectopk.WithParallelism(par),
		sectopk.WithFastNonce(fastNonce),
	}
}

func runOwner(args []string) error {
	fs := flag.NewFlagSet("owner", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	name := fs.String("dataset", "insurance", "dataset spec (insurance|diabetes|PAMAP|synthetic)")
	rows := fs.Int("rows", 40, "dataset rows")
	seed := fs.Int64("seed", 1, "dataset seed")
	keyBits := fs.Int("keybits", 256, "Paillier modulus bits")
	attrsFlag := fs.String("attrs", "0,1,2", "queried attributes (comma separated)")
	k := fs.Int("k", 3, "top-k")
	par := fs.Int("parallelism", 0, "encryption worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	shards := fs.Int("shards", 1, "partition the relation into p shards at encryption time (queries run shards concurrently)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rel, err := sectopk.GenerateDataset(*name, *rows, *seed)
	if err != nil {
		return err
	}
	opts := append(commonOpts(*par, *fastNonce),
		sectopk.WithKeyBits(*keyBits),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
		sectopk.WithShards(*shards),
	)
	owner, err := sectopk.NewOwner(opts...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	er, err := owner.Encrypt(rel)
	if err != nil {
		return err
	}
	fmt.Printf("encrypted %s (%dx%d, %d shard(s)) in %s\n", er.Name(), er.Rows(), er.Attributes(),
		er.Shards(), time.Since(start).Round(time.Millisecond))
	if err := owner.Keys().Save(filepath.Join(*dir, s2KeysFile)); err != nil {
		return err
	}
	if err := owner.Save(filepath.Join(*dir, ownerFile)); err != nil {
		return err
	}
	if err := er.Save(filepath.Join(*dir, relationFile)); err != nil {
		return err
	}
	attrs, err := parseInts(*attrsFlag)
	if err != nil {
		return err
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: attrs, K: *k})
	if err != nil {
		return err
	}
	if err := tk.Save(filepath.Join(*dir, tokenFile)); err != nil {
		return err
	}
	fmt.Printf("wrote %s, %s, %s, %s under %s\n",
		s2KeysFile, ownerFile, relationFile, tokenFile, *dir)
	return nil
}

func runS2(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("s2", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	listen := fs.String("listen", "127.0.0.1:9042", "listen address")
	relation := fs.String("relation", "default", "relation ID to register the keys under")
	par := fs.Int("parallelism", 0, "handler worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	keys, err := sectopk.LoadKeys(filepath.Join(*dir, s2KeysFile))
	if err != nil {
		return err
	}
	cc := sectopk.NewCryptoCloud(commonOpts(*par, *fastNonce)...)
	defer cc.Close()
	if err := cc.Register(*relation, keys); err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("crypto cloud S2 serving relation %q on %s (ctrl-c to stop)\n", *relation, l.Addr())
	if err := cc.Serve(ctx, l); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

func runS1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("s1", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	connect := fs.String("connect", "127.0.0.1:9042", "S2 address")
	relation := fs.String("relation", "default", "relation ID registered on S2")
	mode := fs.String("mode", "e", "query mode: f|e|ba")
	strict := fs.Bool("strict", true, "use strict NRA halting")
	par := fs.Int("parallelism", 0, "S1 worker goroutines (0 = all cores, 1 = serial)")
	fastNonce := fs.Bool("fast-nonce", false, "short-exponent fixed-base nonce path (extra assumption; see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	er, err := sectopk.LoadEncryptedRelation(filepath.Join(*dir, relationFile))
	if err != nil {
		return err
	}
	tk, err := sectopk.LoadToken(filepath.Join(*dir, tokenFile))
	if err != nil {
		return err
	}
	var qmode sectopk.Mode
	switch *mode {
	case "f":
		qmode = sectopk.ModeFull
	case "e":
		qmode = sectopk.ModeEliminate
	case "ba":
		qmode = sectopk.ModeBatched
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	halt := sectopk.HaltingPaper
	if *strict {
		halt = sectopk.HaltingStrict
	}
	dc := sectopk.NewDataCloud(commonOpts(*par, *fastNonce)...)
	defer dc.Close()
	if err := dc.Dial(ctx, *connect); err != nil {
		return err
	}
	if err := dc.Host(ctx, *relation, er); err != nil {
		return err
	}
	sess, err := dc.NewSession(*relation, tk, sectopk.WithMode(qmode), sectopk.WithHalting(halt))
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sess.Execute(ctx)
	if err != nil {
		return err
	}
	tr := sess.Traffic()
	fmt.Printf("query done: depth=%d halted=%v elapsed=%s rounds=%d bytes=%d\n",
		res.Depth, res.Halted, time.Since(start).Round(time.Millisecond), tr.Rounds, tr.Bytes)
	return res.Save(filepath.Join(*dir, resultFile))
}

func runReveal(args []string) error {
	fs := flag.NewFlagSet("reveal", flag.ExitOnError)
	dir := fs.String("dir", ".", "artifact directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	owner, err := sectopk.LoadOwner(filepath.Join(*dir, ownerFile))
	if err != nil {
		return err
	}
	er, err := sectopk.LoadEncryptedRelation(filepath.Join(*dir, relationFile))
	if err != nil {
		return err
	}
	res, err := sectopk.LoadEncryptedResult(filepath.Join(*dir, resultFile))
	if err != nil {
		return err
	}
	revealed, err := owner.Reveal(er, res)
	if err != nil {
		return err
	}
	for rank, item := range revealed {
		fmt.Printf("top-%d: object %d, score %d\n", rank+1, item.Object, item.Score)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing attribute list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
