package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/sectopk"
)

// flakyListener closes its first failFirst accepted connections before
// any byte is exchanged, then serves normally — the shape of a querier
// racing a data cloud that is still starting.
type flakyListener struct {
	net.Listener
	mu        sync.Mutex
	failFirst int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		reject := l.failFirst > 0
		if reject {
			l.failFirst--
		}
		l.mu.Unlock()
		if !reject {
			return conn, nil
		}
		conn.Close()
	}
}

// TestDialClientFlakyListener checks the querier's dial path rides out a
// listener that tears down its first connections (backoff instead of the
// old fixed-interval loop) and then completes the client handshake.
func TestDialClientFlakyListener(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The client plane's Hello needs no hosted relations or S2 link, so
	// an empty data cloud serves as the handshake peer.
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- dc.ServeClients(ctx, &flakyListener{Listener: l, failFirst: 2}) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("ServeClients did not stop")
		}
	}()

	client, err := dialClient(context.Background(), l.Addr().String(), 30*time.Second)
	if err != nil {
		t.Fatalf("dialClient through flaky listener: %v", err)
	}
	client.Close()
}

// TestDialClientGivesUpTyped checks dialClient fails fast and typed when
// nothing ever listens: the wait window bounds the backoff, and the
// terminal error keeps the transport classification.
func TestDialClientGivesUpTyped(t *testing.T) {
	// Reserve an address nothing listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	start := time.Now()
	_, err = dialClient(context.Background(), addr, 300*time.Millisecond)
	if err == nil {
		t.Fatal("dialClient succeeded against a dead address")
	}
	if !errors.Is(err, sectopk.ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport classification", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("dialClient took %v, want the wait window to bound it", took)
	}
}

// TestProbeEndpoints drives /healthz, /readyz, and /metrics through
// every readiness phase: not connected, connected+hosted (ready), and
// draining/closed. /readyz bodies must parse as the structured JSON
// status in every phase.
func TestProbeEndpoints(t *testing.T) {
	ctx := context.Background()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	dc := sectopk.NewDataCloud(sectopk.WithKeyBits(256))
	defer dc.Close()
	var hosted atomic.Bool
	startProbes(pl, s1Ready(dc, &hosted, "demo"))
	base := "http://" + pl.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	parseReady := func(body string) readyStatus {
		t.Helper()
		var st readyStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("/readyz body %q is not JSON: %v", body, err)
		}
		return st
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before connect = %d (%q), want 503", code, body)
	} else if st := parseReady(body); st.State != "not_ready" || st.Reason == "" {
		t.Fatalf("/readyz before connect = %+v, want not_ready with a reason", st)
	}

	// Stand up the minimal stack: keys on S2, one hosted relation on S1.
	owner, err := sectopk.NewOwner(sectopk.WithKeyBits(256), sectopk.WithEHLDigests(3), sectopk.WithMaxScoreBits(20))
	if err != nil {
		t.Fatal(err)
	}
	er, err := owner.Encrypt(&sectopk.Relation{Name: "demo", Rows: [][]int64{{3, 1}, {2, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	cc := sectopk.NewCryptoCloud(sectopk.WithKeyBits(256))
	defer cc.Close()
	if err := cc.Register("demo", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before hosting = %d (%q), want 503", code, body)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		t.Fatal(err)
	}
	hosted.Store(true)
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz when serving = %d (%q), want 200", code, body)
	} else if st := parseReady(body); st.State != "ready" || st.Epoch != 1 {
		t.Fatalf("/readyz when serving = %+v, want state=ready epoch=1", st)
	}
	// Land one query so the registry has families to expose, then check
	// the exposition came through the probe listener.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Execute(ctx, sectopk.TopKRequest("demo", tk)); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	} else if !strings.Contains(body, "# TYPE sectopk_queries_total counter") {
		t.Fatalf("/metrics body = %q, want the query counter family", body)
	}

	dc.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Close = %d (%q), want 503", code, body)
	} else if st := parseReady(body); st.State != "not_ready" || st.Reason != "draining" {
		t.Fatalf("/readyz after Close = %+v, want not_ready/draining", st)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after Close = %d, want 200 (liveness is process-level)", code)
	}
}
