// Command sectopk-bench regenerates the paper's evaluation artifacts: one
// -exp flag per table/figure (see DESIGN.md's experiment index).
//
// Usage:
//
//	sectopk-bench -exp fig9                 # one experiment, scaled defaults
//	sectopk-bench -exp all -rows 200        # the full evaluation sweep
//	sectopk-bench -exp fig7 -keybits 512    # paper-like key size
//	sectopk-bench -exp micro                # crypto hot paths -> BENCH_<date>.json
//	sectopk-bench -list                     # list experiment ids
//
// Markdown output (-md) emits tables ready for EXPERIMENTS.md. The micro
// experiment additionally writes a machine-readable BENCH_<date>.json
// (op, ns/op, key bits, knob settings) so the perf trajectory is tracked
// across PRs; -json overrides its path.
//
// Unlike sectopk-node and the examples — which sit entirely on the
// public sectopk API — this binary deliberately drives internal/bench:
// the evaluation harness measures implementation internals (fixed
// tokens, per-method wire stats, leakage ledgers, crypto micro-paths)
// that a stable public facade intentionally does not expose.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (micro, qps, mutate, soak, fig7, fig8, fig9, fig10, fig11, fig12, tab3, fig13, knn, fig14, ablation, or 'all')")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		keyBits   = flag.Int("keybits", 256, "Paillier modulus bits (paper-scale: 512)")
		ehlS      = flag.Int("ehl-s", 3, "number of EHL+ digests s (paper: 5)")
		rows      = flag.Int("rows", 120, "dataset rows after scaling")
		maxDepth  = flag.Int("maxdepth", 6, "depth cap for time-per-depth measurements")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		par       = flag.Int("parallelism", 0, "worker goroutines per layer (0 = all cores, 1 = serial)")
		fastNonce = flag.Bool("fast-nonce", false, "enable the short-exponent fixed-base nonce path in every layer (extra assumption; see DESIGN.md)")
		shards    = flag.Int("shards", 4, "shard count for the qps experiment's sharded scenarios")
		clients   = flag.Int("clients", 8, "concurrent client sessions for the qps experiment")
		queries   = flag.Int("queries", 4, "timed queries per client in the qps experiment (larger damps variance)")
		md        = flag.Bool("md", false, "emit markdown tables instead of text")
		jsonPath  = flag.String("json", "", "output path for the micro/qps experiments' JSON record (default BENCH_<date>.json)")

		soakClients  = flag.Int("soak-clients", 200, "soak: total concurrent clients across all tenants")
		soakDuration = flag.Duration("soak-duration", 8*time.Second, "soak: wall-clock budget for the timed window")
		soakSessions = flag.Int("soak-sessions", 0, "soak: serving node session limit (0 = node default)")
		soakTenants  = flag.String("soak-tenants", "", "soak: comma list of name=clients[@rate[:burst]] tenant slices, e.g. gold=8,bronze=8@2:2 (empty = gold/bronze default split)")

		clusterConnect  = flag.String("cluster-connect", "", "qps: measure a running cluster front door at this client address instead of the in-process matrix (rows append to the existing qps record)")
		clusterNodes    = flag.Int("cluster-nodes", 0, "qps: S1 member count behind -cluster-connect, recorded per row")
		clusterToken    = flag.String("cluster-token", "query.tk", "qps: stored top-k trapdoor for the cluster rows (sectopk-node owner artifact)")
		clusterRelation = flag.String("cluster-relation", "default", "qps: relation ID hosted by the cluster front door")
	)
	flag.Parse()

	if *list {
		fmt.Println("micro")
		fmt.Println("qps")
		fmt.Println("mutate")
		fmt.Println("soak")
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "sectopk-bench: -exp is required (try -list)")
		os.Exit(2)
	}

	cfg := bench.Config{
		KeyBits:          *keyBits,
		EHLS:             *ehlS,
		MaxScoreBits:     20,
		Rows:             *rows,
		MaxDepth:         *maxDepth,
		Seed:             *seed,
		Parallelism:      *par,
		FastNonce:        *fastNonce,
		Shards:           *shards,
		Clients:          *clients,
		QueriesPerClient: *queries,
	}
	if !*md {
		cfg.Out = os.Stdout
	}

	if *exp == "micro" {
		runMicro(cfg, *md, *jsonPath)
		return
	}
	if *exp == "qps" {
		if *clusterConnect != "" {
			runQPSCluster(bench.ClusterConfig{
				Connect:          *clusterConnect,
				Nodes:            *clusterNodes,
				Shards:           *shards,
				Relation:         *clusterRelation,
				TokenPath:        *clusterToken,
				KeyBits:          *keyBits,
				Clients:          *clients,
				QueriesPerClient: *queries,
			}, *md, *jsonPath)
			return
		}
		runQPS(cfg, *md, *jsonPath)
		return
	}
	if *exp == "mutate" {
		runMutate(cfg, *md, *jsonPath)
		return
	}
	if *exp == "soak" {
		tenants, err := parseSoakTenants(*soakTenants)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", err)
			os.Exit(2)
		}
		scfg := bench.SoakConfig{
			Config:       cfg,
			Duration:     *soakDuration,
			SessionLimit: *soakSessions,
			Tenants:      tenants,
		}
		scfg.Clients = *soakClients
		runSoak(scfg, *md, *jsonPath)
		return
	}

	rig, err := bench.NewRig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", err)
		os.Exit(1)
	}
	defer rig.Close()

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		reports, err := bench.Run(rig, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sectopk-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *md {
			for _, rep := range reports {
				if err := rep.Markdown(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runMicro measures the crypto hot paths and writes the machine-readable
// BENCH_<date>.json perf record alongside the human-readable table.
func runMicro(cfg bench.Config, md bool, jsonPath string) {
	start := time.Now()
	rep, err := bench.RunMicro(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: micro: %v\n", err)
		os.Exit(1)
	}
	table := rep.Report()
	var renderErr error
	if md {
		renderErr = table.Markdown(os.Stdout)
	} else {
		renderErr = table.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", renderErr)
		os.Exit(1)
	}
	path, err := rep.SaveJSON(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: writing perf record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[micro done in %s; perf record -> %s]\n",
		time.Since(start).Round(time.Millisecond), path)
}

// runMutate measures the incremental-write plane (delta apply cost,
// compaction, post-mutation query latency vs a fresh re-encryption) and
// merges the machine-readable record into BENCH_<date>.json.
func runMutate(cfg bench.Config, md bool, jsonPath string) {
	start := time.Now()
	rep, err := bench.RunMutate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: mutate: %v\n", err)
		os.Exit(1)
	}
	table := rep.Report()
	var renderErr error
	if md {
		renderErr = table.Markdown(os.Stdout)
	} else {
		renderErr = table.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", renderErr)
		os.Exit(1)
	}
	path, err := rep.SaveJSON(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: writing perf record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[mutate done in %s; perf record -> %s]\n",
		time.Since(start).Round(time.Millisecond), path)
}

// parseSoakTenants parses the -soak-tenants spec: a comma list of
// name=clients[@rate[:burst]] slices. An omitted rate means the tenant
// runs unlimited; an omitted burst takes the admission layer's default.
func parseSoakTenants(s string) ([]bench.SoakTenant, error) {
	if s == "" {
		return nil, nil
	}
	var out []bench.SoakTenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-soak-tenants: %q is not name=clients[@rate[:burst]]", part)
		}
		t := bench.SoakTenant{Name: name}
		clientsStr, rateStr, limited := strings.Cut(rest, "@")
		n, err := strconv.Atoi(clientsStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-soak-tenants: %q: bad client count %q", part, clientsStr)
		}
		t.Clients = n
		if limited {
			rs, bs, hasBurst := strings.Cut(rateStr, ":")
			rate, err := strconv.ParseFloat(rs, 64)
			if err != nil || rate <= 0 {
				return nil, fmt.Errorf("-soak-tenants: %q: bad rate %q", part, rs)
			}
			t.PerSecond = rate
			if hasBurst {
				b, err := strconv.Atoi(bs)
				if err != nil || b <= 0 {
					return nil, fmt.Errorf("-soak-tenants: %q: bad burst %q", part, bs)
				}
				t.Burst = b
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// runSoak soaks the serving plane (mixed tenants and workloads over real
// TCP) and merges the tail-latency/shed record into BENCH_<date>.json.
// A run that fails with anything other than typed overload/deadline
// sheds exits non-zero — the CI smoke leans on that.
func runSoak(scfg bench.SoakConfig, md bool, jsonPath string) {
	start := time.Now()
	rep, err := bench.RunSoak(scfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: soak: %v\n", err)
		os.Exit(1)
	}
	table := rep.Report()
	var renderErr error
	if md {
		renderErr = table.Markdown(os.Stdout)
	} else {
		renderErr = table.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", renderErr)
		os.Exit(1)
	}
	path, err := rep.SaveJSON(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: writing perf record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[soak done in %s; perf record -> %s]\n",
		time.Since(start).Round(time.Millisecond), path)
	if !rep.Clean() {
		fmt.Fprintf(os.Stderr, "sectopk-bench: soak: non-typed errors observed: %v\n", rep.Errors)
		os.Exit(1)
	}
}

// runQPSCluster measures one cluster throughput row against a running
// sectopk-node front door and appends it to the qps record in
// BENCH_<date>.json (the in-process rows, if present, are kept).
func runQPSCluster(ccfg bench.ClusterConfig, md bool, jsonPath string) {
	start := time.Now()
	rep, err := bench.RunQPSCluster(ccfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: qps cluster: %v\n", err)
		os.Exit(1)
	}
	table := rep.Report()
	var renderErr error
	if md {
		renderErr = table.Markdown(os.Stdout)
	} else {
		renderErr = table.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", renderErr)
		os.Exit(1)
	}
	path, err := rep.AppendJSON(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: writing perf record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[qps cluster row (nodes=%d clients=%d) done in %s; appended -> %s]\n",
		ccfg.Nodes, ccfg.Clients, time.Since(start).Round(time.Millisecond), path)
}

// runQPS measures data-plane throughput (transport x shards x clients)
// and merges the machine-readable record into BENCH_<date>.json.
func runQPS(cfg bench.Config, md bool, jsonPath string) {
	start := time.Now()
	rep, err := bench.RunQPS(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: qps: %v\n", err)
		os.Exit(1)
	}
	table := rep.Report()
	var renderErr error
	if md {
		renderErr = table.Markdown(os.Stdout)
	} else {
		renderErr = table.Render(os.Stdout)
	}
	if renderErr != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: %v\n", renderErr)
		os.Exit(1)
	}
	path, err := rep.SaveJSON(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sectopk-bench: writing perf record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[qps done in %s; perf record -> %s]\n",
		time.Since(start).Round(time.Millisecond), path)
}
