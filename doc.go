// Package repro is a from-scratch Go reproduction of "Top-k Query
// Processing on Encrypted Databases with Strong Security Guarantees"
// (Meng, Zhu, Kollios — ICDE 2018): the SecTopK scheme, its EHL/EHL+
// encrypted hash lists, the two-cloud sub-protocol suite, the secure
// top-k join operator, and the full evaluation harness.
//
// The stable entry point is the repro/sectopk package — the public v1
// API exposing the four deployment roles (Owner, CryptoCloud, DataCloud,
// Session) with context-first calls, typed errors, and a versioned wire
// protocol. Everything under internal/ is implementation.
//
// See README.md for the architecture overview, the layer diagram, and
// the Parallelism knob that tunes the worker-pooled execution core. The
// root-level benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation; the same runners are reachable
// through cmd/sectopk-bench.
package repro
