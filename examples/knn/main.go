// Secure kNN: the Section 11.3 baseline operator as a first-class
// workload of the public API — encrypt a record store, host it on the
// data cloud, ask for the k records nearest a query point, and check the
// revealed answer against the plaintext oracle.
//
// Unlike SecTopK's depth-bounded scans, every kNN query touches all n
// records with O(n*m) secure multiplications between the clouds; this
// cost shape is exactly what the paper's evaluation compares against.
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()

	// 1. The data owner encrypts the record store. The kNN digest key is
	//    part of the owner's persistent state, so a restored owner can
	//    still reveal answers (see Owner.Save / LoadOwner).
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256), // demo-sized; production wants 2048+
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	rel := &sectopk.Relation{
		Name: "points",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	}
	ker, err := owner.EncryptKNN(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}

	// 2. Stand up the clouds and host the record store.
	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("points", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.HostKNN(ctx, "points", ker); err != nil {
		log.Fatalf("host: %v", err)
	}

	// 3. Ask for the 2 records nearest (5,5,5) through the unified
	//    request surface.
	point := []int64{5, 5, 5}
	tk, err := owner.KNNToken(ker, sectopk.KNNQuery{Point: point, K: 2})
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	ans, err := dc.Execute(ctx, sectopk.KNNRequest("points", tk))
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	// 4. Reveal and check against the plaintext oracle: the secure
	//    protocol must return exactly the plaintext k nearest neighbors.
	got, err := owner.RevealKNN(ker, ans.KNN)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	want, err := sectopk.PlainKNN(rel, point, 2)
	if err != nil {
		log.Fatalf("plain oracle: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("secure kNN disagrees with plaintext oracle: %+v vs %+v", got, want)
	}
	for rank, nn := range got {
		fmt.Printf("nn-%d: object %d at squared distance %d\n", rank+1, nn.Object, nn.Distance)
	}
	fmt.Println("secure kNN answer matches the plaintext oracle")
}
