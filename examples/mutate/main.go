// Live updates: the mutation plane through the public sectopk API —
// host an encrypted relation, then insert, update, delete, and compact
// without ever re-encrypting the whole thing, checking revealed answers
// against a plaintext oracle after every epoch.
//
// The paper's scheme is encrypt-once: the owner uploads the ER and goes
// offline. This example shows the incremental-write extension layered on
// top of it:
//
//	sectopk.MutableRelation  the owner's live handle: plaintext mirror +
//	                         encrypted shadow, producing signed-off deltas
//	sectopk.Delta            one atomic mutation bundle with an
//	                         idempotency key and a base epoch
//	DataCloud.Apply          S1 lands a delta, advancing the epoch
//	DataCloud.Compact        folds accumulated tombstones
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()

	// 1. Encrypt and host, exactly like the static pipeline — plus a
	//    mutable handle over the same relation. The handle keeps the
	//    plaintext mirror AND an encrypted shadow of what S1 hosts, so
	//    the owner can build deltas and re-issue tokens at any epoch.
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
		sectopk.WithShards(2),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	rel := &sectopk.Relation{
		Name: "live",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	mr, err := owner.NewMutable(rel, er)
	if err != nil {
		log.Fatalf("mutable handle: %v", err)
	}

	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("live", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.Host(ctx, "live", er); err != nil {
		log.Fatalf("host: %v", err)
	}
	fmt.Printf("hosted %q at epoch %d with %d live rows\n", "live", mr.Epoch(), mr.LiveRows())

	// The plaintext oracle this demo checks every answer against.
	oracle := map[int][]int64{}
	for id, row := range rel.Rows {
		oracle[id] = append([]int64(nil), row...)
	}

	// ship lands one delta on S1 and synchronizes the owner's shadow to
	// the epoch S1 reports. A delta is atomic: it either lands whole
	// (epoch +1) or not at all, and its idempotency key makes a retry
	// after an ambiguous failure safe.
	ship := func(what string, d *sectopk.Delta, err error) {
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		epoch, err := dc.Apply(ctx, "live", d)
		if err != nil {
			log.Fatalf("%s apply: %v", what, err)
		}
		if err := mr.Adopt(epoch); err != nil {
			log.Fatalf("%s adopt: %v", what, err)
		}
		fmt.Printf("%-26s -> epoch %d (%d live, %d tombstoned)\n", what, epoch, mr.LiveRows(), mr.DeadRows())
	}

	// 2. Insert two fresh rows: they join the sorted lists at their
	//    correct encrypted positions. New rows get the next global ids.
	ins := [][]int64{{9, 9, 9}, {2, 10, 4}}
	d, err := mr.InsertRows(ins)
	ship("insert 2 rows", d, err)
	oracle[5], oracle[6] = ins[0], ins[1]

	// 3. Update one row's scores (object 1): under the hood a delete of
	//    its old entries plus an insert of fresh ciphertexts, one atomic
	//    delta — the id stays live throughout.
	d, err = mr.UpdateScores(map[int][]int64{1: {12, 1, 7}})
	ship("update object 1", d, err)
	oracle[1] = []int64{12, 1, 7}

	// 4. Delete object 0. S1 moves its entries to the tombstone tail;
	//    queries exclude them BY CONSTRUCTION (the live prefix is all the
	//    engine ever sees), not by filtering.
	d, err = mr.DeleteRows([]int{0})
	ship("delete object 0", d, err)
	delete(oracle, 0)

	// 5. Query at the current epoch. Tokens come from the mutable handle
	//    so list positions match the live view; the request pins the
	//    epoch, so a concurrent writer would surface as a typed
	//    ErrRelationStale instead of a silently inconsistent answer.
	query := func() {
		tk, err := mr.Token(sectopk.Query{Attrs: []int{0, 1, 2}, K: 3})
		if err != nil {
			log.Fatalf("token: %v", err)
		}
		ans, err := dc.Execute(ctx, sectopk.TopKRequest("live", tk,
			sectopk.WithEpoch(mr.Epoch()), sectopk.WithHalting(sectopk.HaltingStrict)))
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		erv, err := mr.Encrypted()
		if err != nil {
			log.Fatalf("encrypted view: %v", err)
		}
		got, err := owner.Reveal(erv, ans.TopK)
		if err != nil {
			log.Fatalf("reveal: %v", err)
		}
		fmt.Printf("top-3 at epoch %d:\n", mr.Epoch())
		for i, r := range got {
			fmt.Printf("  %d. object %d, aggregate score %d\n", i+1, r.Object, r.Score)
		}
		// Check against the plaintext oracle.
		type sr struct {
			id    int
			score int64
		}
		var all []sr
		for id, row := range oracle {
			all = append(all, sr{id, row[0] + row[1] + row[2]})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return all[i].id < all[j].id
		})
		for i, r := range got {
			if r.Object != all[i].id || r.Score != all[i].score {
				log.Fatalf("rank %d: got object %d score %d, oracle says object %d score %d",
					i+1, r.Object, r.Score, all[i].id, all[i].score)
			}
		}
		fmt.Println("  matches the plaintext oracle")
	}
	query()

	// 6. Compact: fold the tombstone debt the update and delete left
	//    behind. Compaction never changes the live view — only reclaims
	//    the dead tails — so it is safe at any time and the owner's
	//    shadow replays it locally from the epoch number alone.
	epoch, err := dc.Compact(ctx, "live")
	if err != nil {
		log.Fatalf("compact: %v", err)
	}
	if err := mr.Adopt(epoch); err != nil {
		log.Fatalf("adopt compaction: %v", err)
	}
	fmt.Printf("%-26s -> epoch %d (%d live, %d tombstoned)\n", "compact", epoch, mr.LiveRows(), mr.DeadRows())
	query()
}
