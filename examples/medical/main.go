// Medical: the paper's motivating Example 1.1 — an authorized doctor runs
// SELECT * FROM patients ORDER BY chol + thalach STOP AFTER 2 over an
// encrypted heart-disease table, through the public sectopk API. The
// expected top-2 are the records of David and Emma.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sectopk"
)

// Attribute layout of the patients relation (Table 1 of the paper).
const (
	attrAge = iota
	attrID
	attrTrestbps
	attrChol
	attrThalach
)

func main() {
	ctx := context.Background()
	names := []string{"Bob", "Celvin", "David", "Emma", "Flora"}
	patients := &sectopk.Relation{
		Name: "patients",
		Rows: [][]int64{
			// age, id, trestbps, chol, thalach
			{38, 121, 110, 196, 166}, // Bob
			{43, 222, 120, 201, 160}, // Celvin
			{60, 285, 100, 248, 142}, // David
			{36, 956, 120, 267, 112}, // Emma
			{43, 756, 100, 223, 127}, // Flora
		},
	}

	// The data owner (the hospital) encrypts the table before
	// outsourcing; HIPAA-style compliance means the cloud sees only
	// ciphertexts.
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(16),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	er, err := owner.Encrypt(patients)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}

	// Two non-colluding clouds: S2 holds the keys, S1 holds the data.
	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("patients", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.Host(ctx, "patients", er); err != nil {
		log.Fatalf("host: %v", err)
	}

	// Dr. Alice requests a token for ORDER BY chol + thalach STOP AFTER 2
	// and S1 runs the fully private Qry_F variant.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{attrChol, attrThalach}, K: 2})
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	sess, err := dc.NewSession("patients", tk,
		sectopk.WithMode(sectopk.ModeFull),
		sectopk.WithHalting(sectopk.HaltingStrict),
	)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	results, err := owner.Reveal(er, res)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	fmt.Println("top-2 patients by chol + thalach:")
	for rank, item := range results {
		fmt.Printf("  %d. %s (chol=%d, thalach=%d, score=%d)\n",
			rank+1, names[item.Object],
			patients.Rows[item.Object][attrChol], patients.Rows[item.Object][attrThalach],
			item.Score)
	}
	fmt.Printf("(the cloud scanned %d of %d depths and learned neither scores nor ids)\n",
		res.Depth, er.Rows())
}
