// Medical: the paper's motivating Example 1.1 — an authorized doctor runs
// SELECT * FROM patients ORDER BY chol + thalach STOP AFTER 2 over an
// encrypted heart-disease table. The expected top-2 are the records of
// David and Emma.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

// Attribute layout of the patients relation (Table 1 of the paper).
const (
	attrAge = iota
	attrID
	attrTrestbps
	attrChol
	attrThalach
)

func main() {
	names := []string{"Bob", "Celvin", "David", "Emma", "Flora"}
	patients := &dataset.Relation{
		Name: "patients",
		Rows: [][]int64{
			// age, id, trestbps, chol, thalach
			{38, 121, 110, 196, 166}, // Bob
			{43, 222, 120, 201, 160}, // Celvin
			{60, 285, 100, 248, 142}, // David
			{36, 956, 120, 267, 112}, // Emma
			{43, 756, 100, 223, 127}, // Flora
		},
	}

	// The data owner (the hospital) encrypts the table before
	// outsourcing; HIPAA-style compliance means the cloud sees only
	// ciphertexts.
	scheme, err := core.NewScheme(core.Params{
		KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 16,
	})
	if err != nil {
		log.Fatalf("scheme: %v", err)
	}
	er, err := scheme.EncryptRelation(patients)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}

	// Two non-colluding clouds: S2 holds the keys, S1 holds the data.
	server, err := cloud.NewServer(scheme.KeyMaterial(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer server.Close()
	client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()), scheme.PublicKey(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()

	// Dr. Alice requests a token for ORDER BY chol + thalach STOP AFTER 2.
	tk, err := scheme.Token(er, []int{attrChol, attrThalach}, nil, 2)
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	engine, err := core.NewEngine(client, er)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	res, err := engine.SecQuery(tk, core.Options{Mode: core.QryF, Halt: core.HaltStrict})
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	rev, err := scheme.NewRevealer(er.N)
	if err != nil {
		log.Fatalf("revealer: %v", err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	fmt.Println("top-2 patients by chol + thalach:")
	for rank, item := range revealed {
		fmt.Printf("  %d. %s (chol=%d, thalach=%d, score=%d)\n",
			rank+1, names[item.Obj],
			patients.Rows[item.Obj][attrChol], patients.Rows[item.Obj][attrThalach],
			item.Worst)
	}
	fmt.Printf("(the cloud scanned %d of %d depths and learned neither scores nor ids)\n",
		res.Depth, er.N)
}
