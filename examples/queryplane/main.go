// Query plane: the networked querier role. One process stands up the
// full three-party deployment — crypto cloud S2, data cloud S1 serving
// the client wire protocol on a TCP listener, and a sectopk.Client
// dialing in like a remote querier would — then runs all three workloads
// (top-k, top-k join, kNN) through the one unified Request/Answer
// surface and reveals the answers with the owners' keys.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()
	opts := []sectopk.Option{
		sectopk.WithKeyBits(256), // demo-sized; production wants 2048+
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	}

	// 1. Owners encrypt: one relation hosted twice (top-k + kNN) and a
	//    join pair under the join owner's shared key material.
	owner, err := sectopk.NewOwner(opts...)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	jowner, err := sectopk.NewJoinOwner(opts...)
	if err != nil {
		log.Fatalf("join owner: %v", err)
	}
	rel := &sectopk.Relation{Name: "demo", Rows: [][]int64{
		{10, 3, 2}, {8, 8, 0}, {5, 7, 6}, {3, 2, 8}, {1, 1, 1},
	}}
	er, err := owner.Encrypt(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	ker, err := owner.EncryptKNN(rel)
	if err != nil {
		log.Fatalf("encrypt knn: %v", err)
	}
	r1 := &sectopk.Relation{Name: "r1", Rows: [][]int64{{1, 10, 2}, {2, 8, 3}, {3, 5, 1}, {1, 7, 4}}}
	r2 := &sectopk.Relation{Name: "r2", Rows: [][]int64{{1, 6, 9}, {2, 2, 2}, {4, 1, 1}, {3, 3, 3}}}
	jr1, err := jowner.Encrypt(r1)
	if err != nil {
		log.Fatalf("encrypt r1: %v", err)
	}
	jr2, err := jowner.Encrypt(r2)
	if err != nil {
		log.Fatalf("encrypt r2: %v", err)
	}

	// 2. Crypto cloud S2: one service, three registered relations.
	cc := sectopk.NewCryptoCloud(opts...)
	defer cc.Close()
	for id, keys := range map[string]*sectopk.Keys{
		"topk": owner.Keys(), "knn": owner.Keys(), "join": jowner.Keys(),
	} {
		if err := cc.Register(id, keys); err != nil {
			log.Fatalf("register %s: %v", id, err)
		}
	}

	// 3. Data cloud S1: host every workload, then serve remote queriers
	//    on a real TCP listener. WithSessionLimit bounds how many
	//    admitted requests execute concurrently.
	dc := sectopk.NewDataCloud(append(opts, sectopk.WithSessionLimit(4))...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.Host(ctx, "topk", er); err != nil {
		log.Fatalf("host topk: %v", err)
	}
	if err := dc.HostJoin(ctx, "join", jr1, jr2); err != nil {
		log.Fatalf("host join: %v", err)
	}
	if err := dc.HostKNN(ctx, "knn", ker); err != nil {
		log.Fatalf("host knn: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	serveCtx, stopServing := context.WithCancel(ctx)
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := dc.ServeClients(serveCtx, l); err != nil && serveCtx.Err() == nil {
			log.Printf("serve: %v", err)
		}
	}()

	// 4. A remote querier dials in and submits one request per workload
	//    through the same Request/Answer surface in-process callers use.
	//    Tokens are the only secret-adjacent material it ever holds.
	client, err := sectopk.Dial(ctx, l.Addr().String())
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer client.Close()

	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	ans, err := client.Execute(ctx, sectopk.TopKRequest("topk", tk, sectopk.WithHalting(sectopk.HaltingStrict)))
	if err != nil {
		log.Fatalf("topk query: %v", err)
	}
	results, err := owner.Reveal(er, ans.TopK)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	for rank, item := range results {
		fmt.Printf("top-%d: object %d with score %d\n", rank+1, item.Object, item.Score)
	}

	jq := sectopk.JoinQuery{
		JoinAttr1: 0, JoinAttr2: 0, ScoreAttr1: 1, ScoreAttr2: 1,
		Project1: []int{0, 2}, Project2: []int{2}, K: 2,
	}
	jtk, err := jowner.Token(jr1, jr2, jq)
	if err != nil {
		log.Fatalf("join token: %v", err)
	}
	jans, err := client.Execute(ctx, sectopk.JoinRequest("join", jtk))
	if err != nil {
		log.Fatalf("join query: %v", err)
	}
	joined, err := jowner.Reveal(jans.Join)
	if err != nil {
		log.Fatalf("join reveal: %v", err)
	}
	for rank, tup := range joined {
		fmt.Printf("join-%d: score %d, attrs %v\n", rank+1, tup.Score, tup.Attrs)
	}

	ktk, err := owner.KNNToken(ker, sectopk.KNNQuery{Point: []int64{5, 5, 5}, K: 2})
	if err != nil {
		log.Fatalf("knn token: %v", err)
	}
	kans, err := client.Execute(ctx, sectopk.KNNRequest("knn", ktk))
	if err != nil {
		log.Fatalf("knn query: %v", err)
	}
	nns, err := owner.RevealKNN(ker, kans.KNN)
	if err != nil {
		log.Fatalf("knn reveal: %v", err)
	}
	for rank, nn := range nns {
		fmt.Printf("nn-%d: object %d at squared distance %d\n", rank+1, nn.Object, nn.Distance)
	}

	fmt.Printf("client wire: %d rounds, %d bytes\n", client.Traffic().Rounds, client.Traffic().Bytes)
	stopServing()
	<-serveDone
}
