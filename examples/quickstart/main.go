// Quickstart: encrypt a tiny relation, stand up the two clouds, run a
// secure top-k query, and reveal the result — the full SecTopK pipeline
// in one file.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

func main() {
	// 1. The data owner generates keys and encrypts the relation.
	params := core.Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20}
	scheme, err := core.NewScheme(params)
	if err != nil {
		log.Fatalf("scheme: %v", err)
	}
	rel := &dataset.Relation{
		Name: "demo",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	}
	er, err := scheme.EncryptRelation(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	fmt.Printf("encrypted %q: %d rows x %d attrs, %d bytes of ciphertext\n",
		rel.Name, er.N, er.M, er.ByteSize(scheme.PublicKey()))

	// 2. Stand up the crypto cloud S2 (holds the secret keys) and the
	//    data cloud S1's client stub, wired over the in-process transport
	//    with byte accounting.
	server, err := cloud.NewServer(scheme.KeyMaterial(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer server.Close()
	stats := transport.NewStats()
	client, err := cloud.NewClient(transport.NewLocal(server, stats), scheme.PublicKey(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()

	// 3. An authorized client asks for the top-2 by the sum of all three
	//    attributes and sends the token to S1.
	tk, err := scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	engine, err := core.NewEngine(client, er)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	res, err := engine.SecQuery(tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict})
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("halted at depth %d after %d protocol rounds, %d bytes exchanged\n",
		res.Depth, stats.Rounds(), stats.Bytes())

	// 4. The client decrypts the returned ids and worst scores.
	rev, err := scheme.NewRevealer(er.N)
	if err != nil {
		log.Fatalf("revealer: %v", err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	for rank, item := range revealed {
		fmt.Printf("top-%d: object %d with score %d\n", rank+1, item.Obj, item.Worst)
	}
}
