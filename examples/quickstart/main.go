// Quickstart: the full SecTopK pipeline through the public sectopk API —
// encrypt a tiny relation, stand up the two clouds, run a secure top-k
// query session, and reveal the result.
//
// The four roles map onto the paper's Section 3.2 architecture:
//
//	sectopk.Owner        the data owner (keys, Enc, Token, Reveal)
//	sectopk.CryptoCloud  S2, the only key holder, serving relations
//	sectopk.DataCloud    S1, hosting ciphertexts and driving the rounds
//	sectopk.Session      one query's lifecycle: token -> result
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()

	// 1. The data owner generates keys and encrypts the relation. Every
	//    construction knob is a functional option.
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256), // demo-sized; production wants 2048+
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	rel := &sectopk.Relation{
		Name: "demo",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	fmt.Printf("encrypted %q: %d rows x %d attrs, %d bytes of ciphertext\n",
		er.Name(), er.Rows(), er.Attributes(), er.ByteSize())

	// 2. Stand up the crypto cloud S2 (holds the secret keys, registered
	//    per relation) and the data cloud S1, wired in-process with full
	//    wire accounting, then host the encrypted relation. Hosting runs
	//    the versioned Hello handshake, so incompatible peers or unknown
	//    relations fail here with typed errors.
	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("demo", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		log.Fatalf("host: %v", err)
	}

	// 3. An authorized client asks for the top-2 by the sum of all three
	//    attributes and opens a session with the token. The context
	//    cancels the query cooperatively, bounded by one protocol round.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	sess, err := dc.NewSession("demo", tk,
		sectopk.WithMode(sectopk.ModeEliminate),
		sectopk.WithHalting(sectopk.HaltingStrict),
	)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	tr := sess.Traffic()
	fmt.Printf("halted at depth %d after %d protocol rounds, %d bytes exchanged\n",
		res.Depth, tr.Rounds, tr.Bytes)

	// 4. The client decrypts the returned ids and worst scores.
	results, err := owner.Reveal(er, res)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	for rank, item := range results {
		fmt.Printf("top-%d: object %d with score %d\n", rank+1, item.Object, item.Score)
	}
}
