// Leakage: run a query and print exactly what each cloud could observe —
// the CQA leakage profile of Section 9 (query pattern and halting depth
// for S1, per-round equality patterns for S2) plus the uniqueness pattern
// Section 10.1 trades for Qry_E's speed.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

func main() {
	scheme, err := core.NewScheme(core.Params{
		KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20,
	})
	if err != nil {
		log.Fatalf("scheme: %v", err)
	}
	rel, err := dataset.Generate(dataset.Insurance().WithN(12), 7)
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	er, err := scheme.EncryptRelation(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}

	s2Ledger := cloud.NewLedger()
	server, err := cloud.NewServer(scheme.KeyMaterial(), s2Ledger)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer server.Close()
	s1Ledger := cloud.NewLedger()
	stats := transport.NewStats()
	client, err := cloud.NewClient(transport.NewLocal(server, stats), scheme.PublicKey(), s1Ledger)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()

	tk, err := scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	engine, err := core.NewEngine(client, er)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	// Run the same query twice: the second run should surface in the
	// query-pattern leakage.
	for i := 0; i < 2; i++ {
		if _, err := engine.SecQuery(tk, core.Options{Mode: core.QryE, Halt: core.HaltPaper}); err != nil {
			log.Fatalf("query: %v", err)
		}
	}

	fmt.Println("=== S1 (data cloud) view — L1_Query = (QP, D_q) plus Qry_E's UP^d ===")
	for _, ev := range s1Ledger.Events() {
		fmt.Println(" ", ev)
	}
	fmt.Println()
	fmt.Println("=== S2 (crypto cloud) view — L2_Query = {EP^d} ===")
	events := s2Ledger.Events()
	max := 12
	for i, ev := range events {
		if i >= max {
			fmt.Printf("  ... and %d more rounds of the same shape\n", len(events)-max)
			break
		}
		fmt.Println(" ", ev)
	}
	fmt.Println()
	fmt.Printf("traffic: %d rounds, %d bytes total — every payload blinded or permuted\n",
		stats.Rounds(), stats.Bytes())
}
