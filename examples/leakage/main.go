// Leakage: run a query and print exactly what each cloud could observe —
// the CQA leakage profile of Section 9 (query pattern and halting depth
// for S1, per-round equality patterns for S2) plus the uniqueness pattern
// Section 10.1 trades for Qry_E's speed — all through the public API's
// LeakageEvents surfaces.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	rel, err := sectopk.GenerateDataset("insurance", 12, 7)
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}

	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("insurance", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.Host(ctx, "insurance", er); err != nil {
		log.Fatalf("host: %v", err)
	}

	// Run the same query twice: the second run should surface in the
	// query-pattern leakage.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	for i := 0; i < 2; i++ {
		sess, err := dc.NewSession("insurance", tk, sectopk.WithMode(sectopk.ModeEliminate))
		if err != nil {
			log.Fatalf("session: %v", err)
		}
		if _, err := sess.Execute(ctx); err != nil {
			log.Fatalf("query: %v", err)
		}
	}

	fmt.Println("=== S1 (data cloud) view — L1_Query = (QP, D_q) plus Qry_E's UP^d ===")
	for _, ev := range dc.LeakageEvents() {
		fmt.Println(" ", ev)
	}
	fmt.Println()
	fmt.Println("=== S2 (crypto cloud) view — L2_Query = {EP^d} ===")
	events := cc.LeakageEvents()
	max := 12
	for i, ev := range events {
		if i >= max {
			fmt.Printf("  ... and %d more rounds of the same shape\n", len(events)-max)
			break
		}
		fmt.Println(" ", ev)
	}
	fmt.Println()
	tr := dc.Traffic()
	fmt.Printf("traffic: %d rounds, %d bytes total — every payload blinded or permuted\n",
		tr.Rounds, tr.Bytes)
}
