// Topkjoin: the Section 12 scenario — a secure top-k equi-join across two
// encrypted relations:
//
//	SELECT ... FROM R1, R2 WHERE R1.dept = R2.dept
//	ORDER BY R1.rating + R2.budget STOP AFTER 3
//
// Neither cloud learns which tuples joined, only how many did.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/transport"
)

func main() {
	// R1(dept, rating, headcount), R2(dept, budget, projects).
	r1 := &dataset.Relation{Name: "teams", Rows: [][]int64{
		{1, 90, 12},
		{2, 75, 7},
		{3, 82, 20},
		{2, 88, 5},
		{4, 60, 9},
	}}
	r2 := &dataset.Relation{Name: "budgets", Rows: [][]int64{
		{2, 40, 3},
		{3, 55, 6},
		{1, 30, 2},
		{5, 99, 9},
	}}

	scheme, err := join.NewScheme(join.Params{
		KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 16,
	})
	if err != nil {
		log.Fatalf("scheme: %v", err)
	}
	er1, err := scheme.EncryptRelation(r1)
	if err != nil {
		log.Fatalf("encrypt R1: %v", err)
	}
	er2, err := scheme.EncryptRelation(r2)
	if err != nil {
		log.Fatalf("encrypt R2: %v", err)
	}

	server, err := cloud.NewServer(scheme.KeyMaterial(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer server.Close()
	stats := transport.NewStats()
	client, err := cloud.NewClient(transport.NewLocal(server, stats), scheme.PublicKey(), cloud.NewLedger())
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()

	// Join on dept (attr 0 = attr 0), score by rating + budget
	// (attr 1 + attr 1), project headcount and projects.
	tk, err := scheme.NewToken(er1, er2, 0, 0, 1, 1, []int{2}, []int{2}, 3)
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	engine, err := join.NewEngine(client, er1, er2, 16)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	enc, err := engine.SecJoin(tk)
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	got, err := scheme.Reveal(enc)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}

	want, err := join.PlainTopKJoin(r1, r2, 0, 0, 1, 1, []int{2}, []int{2}, 3)
	if err != nil {
		log.Fatalf("plain join: %v", err)
	}
	fmt.Printf("secure top-%d join over %d x %d candidate pairs (%d rounds, %d bytes):\n",
		3, r1.N(), r2.N(), stats.Rounds(), stats.Bytes())
	for i, t := range got {
		fmt.Printf("  %d. score=%d headcount=%d projects=%d (plaintext check: score=%d)\n",
			i+1, t.Score, t.Attrs[0], t.Attrs[1], want[i].Score)
	}
}
