// Topkjoin: the Section 12 scenario — a secure top-k equi-join across two
// encrypted relations, through the public sectopk API:
//
//	SELECT ... FROM R1, R2 WHERE R1.dept = R2.dept
//	ORDER BY R1.rating + R2.budget STOP AFTER 3
//
// Neither cloud learns which tuples joined, only how many did.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sectopk"
)

func main() {
	ctx := context.Background()

	// R1(dept, rating, headcount), R2(dept, budget, projects).
	r1 := &sectopk.Relation{Name: "teams", Rows: [][]int64{
		{1, 90, 12},
		{2, 75, 7},
		{3, 82, 20},
		{2, 88, 5},
		{4, 60, 9},
	}}
	r2 := &sectopk.Relation{Name: "budgets", Rows: [][]int64{
		{2, 40, 3},
		{3, 55, 6},
		{1, 30, 2},
		{5, 99, 9},
	}}

	// One JoinOwner encrypts both relations under shared key material, so
	// the clouds can evaluate the equi-join condition across them.
	owner, err := sectopk.NewJoinOwner(
		sectopk.WithKeyBits(256),
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(16),
	)
	if err != nil {
		log.Fatalf("owner: %v", err)
	}
	er1, err := owner.Encrypt(r1)
	if err != nil {
		log.Fatalf("encrypt R1: %v", err)
	}
	er2, err := owner.Encrypt(r2)
	if err != nil {
		log.Fatalf("encrypt R2: %v", err)
	}

	// One registration ("hr") covers every join over this owner's
	// relations; the data cloud hosts the pair under the same ID.
	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("hr", owner.Keys()); err != nil {
		log.Fatalf("register: %v", err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatalf("connect: %v", err)
	}
	if err := dc.HostJoin(ctx, "hr", er1, er2); err != nil {
		log.Fatalf("host: %v", err)
	}

	// Join on dept (attr 0 = attr 0), score by rating + budget
	// (attr 1 + attr 1), project headcount and projects.
	q := sectopk.JoinQuery{
		JoinAttr1: 0, JoinAttr2: 0,
		ScoreAttr1: 1, ScoreAttr2: 1,
		Project1: []int{2}, Project2: []int{2},
		K: 3,
	}
	tk, err := owner.Token(er1, er2, q)
	if err != nil {
		log.Fatalf("token: %v", err)
	}
	sess, err := dc.NewJoinSession("hr", tk)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	enc, err := sess.Execute(ctx)
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	got, err := owner.Reveal(enc)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}

	want, err := sectopk.PlainTopKJoin(r1, r2, q)
	if err != nil {
		log.Fatalf("plain join: %v", err)
	}
	tr := sess.Traffic()
	fmt.Printf("secure top-%d join over %d x %d candidate pairs (%d rounds, %d bytes):\n",
		q.K, len(r1.Rows), len(r2.Rows), tr.Rounds, tr.Bytes)
	for i, t := range got {
		fmt.Printf("  %d. score=%d headcount=%d projects=%d (plaintext check: score=%d)\n",
			i+1, t.Score, t.Attrs[0], t.Attrs[1], want[i].Score)
	}
}
